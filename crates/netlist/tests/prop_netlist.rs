//! Property tests for the synthesis substrate: random netlists must
//! survive optimize → map → verify with function preserved, and the BDD
//! backend must agree with simulation.

use clapped_netlist::bdd::{check_equivalence, BddManager, Equivalence};
use clapped_netlist::{
    bus, lint_netlist, map_luts, optimize, FaultKind, FaultSet, MapStrategy, Netlist, SignalId,
};
use proptest::prelude::*;

/// Builds a random DAG of gates over `n_inputs` inputs from an opcode
/// stream.
fn random_netlist(n_inputs: usize, ops: &[u8]) -> Netlist {
    let mut n = Netlist::new("rand");
    let mut sigs: Vec<_> = (0..n_inputs).map(|i| n.input(format!("i{i}"))).collect();
    for (k, &op) in ops.iter().enumerate() {
        let a = sigs[(k * 7 + 1) % sigs.len()];
        let b = sigs[(k * 13 + 3) % sigs.len()];
        let c = sigs[(k * 5 + 2) % sigs.len()];
        let s = match op % 9 {
            0 => n.and(a, b),
            1 => n.or(a, b),
            2 => n.xor(a, b),
            3 => n.nand(a, b),
            4 => n.nor(a, b),
            5 => n.xnor(a, b),
            6 => n.not(a),
            7 => n.mux(a, b, c),
            _ => n.maj(a, b, c),
        };
        sigs.push(s);
    }
    // Expose the last few signals as outputs.
    for (i, &s) in sigs.iter().rev().take(4).enumerate() {
        n.output(format!("o{i}"), s);
    }
    n
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// optimize + map preserve function on random logic for both
    /// strategies and several LUT sizes.
    #[test]
    fn mapping_preserves_function(
        ops in proptest::collection::vec(any::<u8>(), 4..60),
        k in 3usize..=6,
        words in proptest::collection::vec(any::<u64>(), 4),
    ) {
        let n = random_netlist(4, &ops);
        let opt = optimize(&n);
        for strategy in [MapStrategy::Depth, MapStrategy::Area] {
            let mapped = map_luts(&opt, k, strategy).expect("mappable");
            let want = n.simulate_words(&words).expect("simulates");
            let got = mapped.simulate_words(&words).expect("simulates");
            prop_assert_eq!(&want, &got);
            // The LUT network reconverted to gates agrees as well.
            let back = mapped.to_netlist("back");
            prop_assert_eq!(&want, &back.simulate_words(&words).expect("simulates"));
        }
    }

    /// The formal checker proves optimize() correct on random logic and
    /// its verdict matches exhaustive simulation.
    #[test]
    fn bdd_agrees_with_exhaustive_simulation(
        ops in proptest::collection::vec(any::<u8>(), 4..40),
    ) {
        let n = random_netlist(4, &ops);
        let opt = optimize(&n);
        let verdict = check_equivalence(&n, &opt, 100_000).expect("small cones fit");
        prop_assert_eq!(verdict, Equivalence::Equal);
    }

    /// BDD evaluation equals netlist simulation on every input pattern
    /// (4 inputs, exhaustive).
    #[test]
    fn bdd_truth_matches_simulation(
        ops in proptest::collection::vec(any::<u8>(), 4..30),
    ) {
        let n = random_netlist(4, &ops);
        let mut mgr = BddManager::new(4, 100_000);
        let outs = mgr.build_outputs(&n).expect("fits");
        for pattern in 0..16u64 {
            let inputs: Vec<bool> = (0..4).map(|b| (pattern >> b) & 1 == 1).collect();
            let sim = n.simulate_bool(&inputs).expect("simulates");
            for (oi, &f) in outs.iter().enumerate() {
                // Evaluate the BDD by restriction: walk with the inputs.
                let val = mgr.eval(f, &inputs);
                prop_assert_eq!(sim[oi], val, "output {} pattern {}", oi, pattern);
            }
        }
    }

    /// Structural lint gate on the optimizer: whatever random logic
    /// goes in, `optimize` output carries no structural errors and no
    /// dead gates — the lint's cone-of-influence and the optimizer's
    /// DCE agree on liveness. (No gate-count bound is asserted: folding
    /// legally decomposes Nand/Nor/Xnor into base gate + Not.)
    #[test]
    fn optimize_output_passes_structural_lints(
        ops in proptest::collection::vec(any::<u8>(), 4..60),
    ) {
        let n = random_netlist(4, &ops);
        let raw = lint_netlist(&n);
        prop_assert!(raw.errors().next().is_none(), "{:?}", raw.findings);
        let report = lint_netlist(&optimize(&n));
        prop_assert!(report.errors().next().is_none(), "{:?}", report.findings);
        prop_assert_eq!(report.stats.dead_gates, 0, "DCE left dead gates");
    }

    /// Adders of random widths are exact through the whole flow.
    #[test]
    fn random_width_adders_are_exact(w in 2usize..10, a in 0u64..1024, b in 0u64..1024) {
        let mask = (1u64 << w) - 1;
        let (av, bv) = (a & mask, b & mask);
        let mut n = Netlist::new("add");
        let xa = n.input_bus("a", w);
        let xb = n.input_bus("b", w);
        let (s, c) = bus::ripple_carry_add(&mut n, &xa, &xb, None);
        n.output_bus("s", &s);
        n.output("c", c);
        let mapped = map_luts(&optimize(&n), 6, MapStrategy::Depth).expect("mappable");
        let out = {
            let mut words = clapped_netlist::pack_bus_samples(&[av as i64], w);
            words.extend(clapped_netlist::pack_bus_samples(&[bv as i64], w));
            let outs = mapped.simulate_words(&words).expect("simulates");
            let mut v = 0u64;
            for (k, &word) in outs.iter().enumerate() {
                if word & 1 == 1 {
                    v |= 1 << k;
                }
            }
            v
        };
        prop_assert_eq!(out, av + bv);
    }
}



proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The fault-injection evaluator with an empty fault set is
    /// bit-identical to the fault-free simulator on random logic and
    /// random stimulus — injection masks must be pure overlays.
    #[test]
    fn zero_fault_campaign_is_bit_identical(
        ops in proptest::collection::vec(any::<u8>(), 4..60),
        words in proptest::collection::vec(any::<u64>(), 4),
    ) {
        let n = random_netlist(4, &ops);
        let plain = n.eval_words(&words).expect("evaluates");
        let faulted = n
            .eval_words_with_faults(&words, &FaultSet::empty())
            .expect("evaluates");
        prop_assert_eq!(plain, faulted);
        let out_plain = n.simulate_words(&words).expect("simulates");
        let out_faulted = n
            .simulate_words_with_faults(&words, &FaultSet::empty())
            .expect("simulates");
        prop_assert_eq!(out_plain, out_faulted);
    }

    /// A transient bit-flip applied twice on the same lanes cancels out:
    /// XOR masks compose within a fault set.
    #[test]
    fn double_transient_flip_is_identity(
        ops in proptest::collection::vec(any::<u8>(), 4..40),
        words in proptest::collection::vec(any::<u64>(), 4),
        target in any::<u8>(),
        lanes in any::<u64>(),
    ) {
        let n = random_netlist(4, &ops);
        let sig = SignalId::from_index(target as usize % n.len());
        let twice = FaultSet::empty().transient(sig, lanes).transient(sig, lanes);
        let plain = n.eval_words(&words).expect("evaluates");
        let faulted = n.eval_words_with_faults(&words, &twice).expect("evaluates");
        prop_assert_eq!(plain, faulted);
    }

    /// A stuck-at fault on net s forces s to the stuck value in every
    /// lane, regardless of the surrounding logic.
    #[test]
    fn stuck_at_forces_value_on_random_logic(
        ops in proptest::collection::vec(any::<u8>(), 4..40),
        words in proptest::collection::vec(any::<u64>(), 4),
        target in any::<u8>(),
        polarity in any::<bool>(),
    ) {
        let n = random_netlist(4, &ops);
        let idx = target as usize % n.len();
        let kind = if polarity { FaultKind::StuckAt1 } else { FaultKind::StuckAt0 };
        let set = FaultSet::empty().stuck_at(SignalId::from_index(idx), kind);
        let vals = n.eval_words_with_faults(&words, &set).expect("evaluates");
        let expected = if polarity { !0u64 } else { 0u64 };
        prop_assert_eq!(vals[idx], expected);
    }
}
