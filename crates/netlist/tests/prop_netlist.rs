//! Property tests for the synthesis substrate: random netlists must
//! survive optimize → map → verify with function preserved, and the BDD
//! backend must agree with simulation.

use clapped_netlist::bdd::{check_equivalence, BddManager, Equivalence};
use clapped_netlist::{bus, map_luts, optimize, MapStrategy, Netlist};
use proptest::prelude::*;

/// Builds a random DAG of gates over `n_inputs` inputs from an opcode
/// stream.
fn random_netlist(n_inputs: usize, ops: &[u8]) -> Netlist {
    let mut n = Netlist::new("rand");
    let mut sigs: Vec<_> = (0..n_inputs).map(|i| n.input(format!("i{i}"))).collect();
    for (k, &op) in ops.iter().enumerate() {
        let a = sigs[(k * 7 + 1) % sigs.len()];
        let b = sigs[(k * 13 + 3) % sigs.len()];
        let c = sigs[(k * 5 + 2) % sigs.len()];
        let s = match op % 9 {
            0 => n.and(a, b),
            1 => n.or(a, b),
            2 => n.xor(a, b),
            3 => n.nand(a, b),
            4 => n.nor(a, b),
            5 => n.xnor(a, b),
            6 => n.not(a),
            7 => n.mux(a, b, c),
            _ => n.maj(a, b, c),
        };
        sigs.push(s);
    }
    // Expose the last few signals as outputs.
    for (i, &s) in sigs.iter().rev().take(4).enumerate() {
        n.output(format!("o{i}"), s);
    }
    n
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// optimize + map preserve function on random logic for both
    /// strategies and several LUT sizes.
    #[test]
    fn mapping_preserves_function(
        ops in proptest::collection::vec(any::<u8>(), 4..60),
        k in 3usize..=6,
        words in proptest::collection::vec(any::<u64>(), 4),
    ) {
        let n = random_netlist(4, &ops);
        let opt = optimize(&n);
        for strategy in [MapStrategy::Depth, MapStrategy::Area] {
            let mapped = map_luts(&opt, k, strategy).expect("mappable");
            let want = n.simulate_words(&words).expect("simulates");
            let got = mapped.simulate_words(&words).expect("simulates");
            prop_assert_eq!(&want, &got);
            // The LUT network reconverted to gates agrees as well.
            let back = mapped.to_netlist("back");
            prop_assert_eq!(&want, &back.simulate_words(&words).expect("simulates"));
        }
    }

    /// The formal checker proves optimize() correct on random logic and
    /// its verdict matches exhaustive simulation.
    #[test]
    fn bdd_agrees_with_exhaustive_simulation(
        ops in proptest::collection::vec(any::<u8>(), 4..40),
    ) {
        let n = random_netlist(4, &ops);
        let opt = optimize(&n);
        let verdict = check_equivalence(&n, &opt, 100_000).expect("small cones fit");
        prop_assert_eq!(verdict, Equivalence::Equal);
    }

    /// BDD evaluation equals netlist simulation on every input pattern
    /// (4 inputs, exhaustive).
    #[test]
    fn bdd_truth_matches_simulation(
        ops in proptest::collection::vec(any::<u8>(), 4..30),
    ) {
        let n = random_netlist(4, &ops);
        let mut mgr = BddManager::new(4, 100_000);
        let outs = mgr.build_outputs(&n).expect("fits");
        for pattern in 0..16u64 {
            let inputs: Vec<bool> = (0..4).map(|b| (pattern >> b) & 1 == 1).collect();
            let sim = n.simulate_bool(&inputs).expect("simulates");
            for (oi, &f) in outs.iter().enumerate() {
                // Evaluate the BDD by restriction: walk with the inputs.
                let val = mgr.eval(f, &inputs);
                prop_assert_eq!(sim[oi], val, "output {} pattern {}", oi, pattern);
            }
        }
    }

    /// Adders of random widths are exact through the whole flow.
    #[test]
    fn random_width_adders_are_exact(w in 2usize..10, a in 0u64..1024, b in 0u64..1024) {
        let mask = (1u64 << w) - 1;
        let (av, bv) = (a & mask, b & mask);
        let mut n = Netlist::new("add");
        let xa = n.input_bus("a", w);
        let xb = n.input_bus("b", w);
        let (s, c) = bus::ripple_carry_add(&mut n, &xa, &xb, None);
        n.output_bus("s", &s);
        n.output("c", c);
        let mapped = map_luts(&optimize(&n), 6, MapStrategy::Depth).expect("mappable");
        let out = {
            let mut words = clapped_netlist::pack_bus_samples(&[av as i64], w);
            words.extend(clapped_netlist::pack_bus_samples(&[bv as i64], w));
            let outs = mapped.simulate_words(&words).expect("simulates");
            let mut v = 0u64;
            for (k, &word) in outs.iter().enumerate() {
                if word & 1 == 1 {
                    v |= 1 << k;
                }
            }
            v
        };
        prop_assert_eq!(out, av + bv);
    }
}


