//! Property tests pinning the wide-word block simulator bit-identical
//! to the 64-way reference path on random logic for W ∈ {1, 2, 4, 8}:
//! plain evaluation, fault-mask application (including partial final
//! blocks), and the sharded stuck-at campaign against its serial
//! reference.

use clapped_netlist::{CampaignOptions, FaultKind, FaultSet, Netlist, SignalId};
use proptest::prelude::*;

/// Builds a random DAG of gates over `n_inputs` inputs from an opcode
/// stream (same construction as `prop_netlist.rs`).
fn random_netlist(n_inputs: usize, ops: &[u8]) -> Netlist {
    let mut n = Netlist::new("rand");
    let mut sigs: Vec<_> = (0..n_inputs).map(|i| n.input(format!("i{i}"))).collect();
    for (k, &op) in ops.iter().enumerate() {
        let a = sigs[(k * 7 + 1) % sigs.len()];
        let b = sigs[(k * 13 + 3) % sigs.len()];
        let c = sigs[(k * 5 + 2) % sigs.len()];
        let s = match op % 9 {
            0 => n.and(a, b),
            1 => n.or(a, b),
            2 => n.xor(a, b),
            3 => n.nand(a, b),
            4 => n.nor(a, b),
            5 => n.xnor(a, b),
            6 => n.not(a),
            7 => n.mux(a, b, c),
            _ => n.maj(a, b, c),
        };
        sigs.push(s);
    }
    for (i, &s) in sigs.iter().rev().take(4).enumerate() {
        n.output(format!("o{i}"), s);
    }
    n
}

/// Packs up to `W` word batches into blocks: lane word `w` of every
/// input block carries batch `w` (missing batches stay zero — a partial
/// final block).
fn to_blocks<const W: usize>(word_batches: &[Vec<u64>], n_inputs: usize) -> Vec<[u64; W]> {
    assert!(word_batches.len() <= W);
    (0..n_inputs)
        .map(|k| {
            let mut block = [0u64; W];
            for (w, batch) in word_batches.iter().enumerate() {
                block[w] = batch[k];
            }
            block
        })
        .collect()
}

/// Asserts `simulate_blocks::<W>` equals lane-by-lane `simulate_words`
/// on the meaningful words, with and without an injected fault set.
fn assert_blocks_match_words<const W: usize>(
    n: &Netlist,
    word_batches: &[Vec<u64>],
    faults: &FaultSet,
) -> std::result::Result<(), String> {
    let blocks = to_blocks::<W>(word_batches, n.inputs().len());
    let wide = n.simulate_blocks_with_faults::<W>(&blocks, faults).expect("wide simulates");
    for (w, batch) in word_batches.iter().enumerate() {
        let narrow = n.simulate_words_with_faults(batch, faults).expect("narrow simulates");
        for (k, out) in wide.iter().enumerate() {
            prop_assert_eq!(out[w], narrow[k], "W={} word={} output={}", W, w, k);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Plain wide evaluation is bit-identical to the 64-way simulator
    /// for W ∈ {1, 2, 4}, full and partial blocks alike.
    #[test]
    fn wide_blocks_match_words(
        ops in proptest::collection::vec(any::<u8>(), 4..60),
        lanes in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 4), 1..=4),
    ) {
        let n = random_netlist(4, &ops);
        let empty = FaultSet::empty();
        assert_blocks_match_words::<1>(&n, &lanes[..1], &empty)?;
        assert_blocks_match_words::<2>(&n, &lanes[..lanes.len().min(2)], &empty)?;
        assert_blocks_match_words::<4>(&n, &lanes, &empty)?;
        assert_blocks_match_words::<8>(&n, &lanes, &empty)?;
    }

    /// Fault masks broadcast across every word of a block, including the
    /// padding words of a partial final block — the faulted wide path
    /// matches the faulted 64-way path word for word.
    #[test]
    fn wide_fault_masks_match_words(
        ops in proptest::collection::vec(any::<u8>(), 4..60),
        lanes in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 4), 1..=3),
        target in any::<u8>(),
        polarity in any::<bool>(),
        flip_lanes in any::<u64>(),
    ) {
        let n = random_netlist(4, &ops);
        let sig = SignalId::from_index(target as usize % n.len());
        let kind = if polarity { FaultKind::StuckAt1 } else { FaultKind::StuckAt0 };
        let faults = FaultSet::empty().stuck_at(sig, kind).transient(sig, flip_lanes);
        assert_blocks_match_words::<1>(&n, &lanes[..1], &faults)?;
        assert_blocks_match_words::<2>(&n, &lanes[..lanes.len().min(2)], &faults)?;
        assert_blocks_match_words::<4>(&n, &lanes, &faults)?;
        assert_blocks_match_words::<8>(&n, &lanes, &faults)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The wide sharded stuck-at campaign is bit-identical to the serial
    /// 64-way reference — every rate, every weighted error, at any
    /// thread count, for batch counts that leave partial final blocks
    /// and for partial lane masks.
    #[test]
    fn sharded_campaign_matches_reference(
        ops in proptest::collection::vec(any::<u8>(), 4..50),
        batches in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 4), 1..=10),
        lanes_per_batch in 1usize..=64,
        skip_dead in any::<bool>(),
    ) {
        let n = random_netlist(4, &ops);
        let sites = n.fault_sites();
        let reference = n
            .stuck_at_campaign_ref(&sites, &batches, lanes_per_batch)
            .expect("reference campaign runs");
        for jobs in [1, 3] {
            let engine = clapped_exec::Engine::new(clapped_exec::ExecConfig::with_jobs(jobs));
            let wide = n
                .stuck_at_campaign_with_options(
                    &sites,
                    &batches,
                    lanes_per_batch,
                    &engine,
                    CampaignOptions { skip_dead, ..CampaignOptions::default() },
                )
                .expect("wide campaign runs");
            prop_assert_eq!(&reference.sites, &wide.sites, "jobs={} skip_dead={}", jobs, skip_dead);
            prop_assert_eq!(reference.samples, wide.samples);
            prop_assert_eq!(reference.ranked_sites(), wide.ranked_sites());
        }
    }
}
