//! Property tests for the DSE machinery: hypervolume axioms, Pareto
//! soundness under permutation, and GP interpolation behaviour.

use clapped_dse::{
    dominates, exclusive_contributions, hypervolume, pareto_front, Configuration, DesignSpace, Gp,
};
use proptest::prelude::*;
use rand::SeedableRng;

fn points2(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, 2), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Hypervolume is invariant under point permutation and duplicate
    /// insertion.
    #[test]
    fn hv_permutation_and_duplicates(points in points2(1..15), rot in 0usize..8) {
        let reference = [1.0, 1.0];
        let hv = hypervolume(&points, &reference);
        let mut rotated = points.clone();
        let r = rot % rotated.len().max(1);
        rotated.rotate_left(r);
        prop_assert!((hypervolume(&rotated, &reference) - hv).abs() < 1e-12);
        let mut dup = points.clone();
        dup.push(points[0].clone());
        prop_assert!((hypervolume(&dup, &reference) - hv).abs() < 1e-12);
    }

    /// 3D hypervolume of a single point equals its box volume.
    #[test]
    fn hv3_single_point_is_box(p in proptest::collection::vec(0.0f64..1.0, 3)) {
        let reference = [1.0, 1.0, 1.0];
        let expect: f64 = p.iter().map(|x| 1.0 - x).product();
        let hv = hypervolume(&[p], &reference);
        prop_assert!((hv - expect).abs() < 1e-12, "{} vs {}", hv, expect);
    }

    /// 3D hypervolume is monotone under point addition.
    #[test]
    fn hv3_monotone(
        points in proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, 3), 1..10),
        extra in proptest::collection::vec(0.0f64..1.0, 3),
    ) {
        let reference = [1.0, 1.0, 1.0];
        let before = hypervolume(&points, &reference);
        let mut more = points.clone();
        more.push(extra);
        prop_assert!(hypervolume(&more, &reference) >= before - 1e-12);
    }

    /// Exclusive contributions of Pareto points are positive unless
    /// duplicated; dominated points contribute zero.
    #[test]
    fn exclusive_contribution_signs(points in points2(2..12)) {
        let reference = [1.0, 1.0];
        let contributions = exclusive_contributions(&points, &reference);
        let front = pareto_front(&points);
        for (i, c) in contributions.iter().enumerate() {
            if !front.contains(&i) {
                prop_assert!(c.abs() < 1e-12, "dominated point {} contributes {}", i, c);
            } else {
                let duplicated = points
                    .iter()
                    .enumerate()
                    .any(|(j, p)| j != i && p == &points[i]);
                if !duplicated {
                    prop_assert!(*c >= 0.0);
                }
            }
        }
    }

    /// Dominance is a strict partial order: irreflexive and asymmetric.
    #[test]
    fn dominance_is_strict_partial_order(a in proptest::collection::vec(0.0f64..1.0, 3),
                                         b in proptest::collection::vec(0.0f64..1.0, 3)) {
        prop_assert!(!dominates(&a, &a));
        if dominates(&a, &b) {
            prop_assert!(!dominates(&b, &a));
        }
    }

    /// GP interpolates its own training data (low noise grid points).
    #[test]
    fn gp_interpolates_training_points(seed in 0u64..1000) {
        use rand::Rng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let xs: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] / 3.0).sin() + rng.gen_range(-1e-6..1e-6)).collect();
        let gp = Gp::fit(&xs, &ys).expect("fits");
        for (x, y) in xs.iter().zip(&ys) {
            let (m, _) = gp.predict(x);
            prop_assert!((m - y).abs() < 0.2, "at {:?}: {} vs {}", x, m, y);
        }
    }

    /// Configuration mutation always stays inside the space, and the
    /// golden configuration is never strictly dominated in space terms
    /// (sanity of encode/decode plumbing).
    #[test]
    fn mutation_closure(seed: u64, steps in 1usize..50) {
        let space = DesignSpace::paper_default(9);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut c: Configuration = space.sample(&mut rng);
        for _ in 0..steps {
            space.mutate(&mut c, &mut rng);
            prop_assert!(space.contains(&c));
        }
    }
}
