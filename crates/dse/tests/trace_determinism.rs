//! Observability must never perturb a search: a traced MBO run is
//! bit-identical to an untraced run of the same seed — instrumentation
//! only reads clocks and bumps atomics, it never touches the RNG
//! stream, digests or checkpoints.

use clapped_dse::{mbo, MboConfig};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

fn toy_objective(c: &[f64]) -> Vec<f64> {
    let x = (c[0] + c[1]) / 2.0;
    vec![x, (1.0 - x) * (1.0 - x) + 0.05 * (c[0] - c[1]).abs()]
}

fn toy_sample(rng: &mut ChaCha8Rng) -> Vec<f64> {
    vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]
}

fn run() -> clapped_dse::SearchResult<Vec<f64>> {
    let config = MboConfig {
        initial_samples: 8,
        iterations: 4,
        batch: 4,
        candidates: 20,
        reference: vec![1.5, 1.5],
        kappa: 1.0,
        explore_fraction: 0.1,
        seed: 17,
    };
    mbo(&config, toy_sample, |c| c.clone(), |c| toy_objective(c)).unwrap()
}

#[test]
fn traced_and_untraced_runs_are_bit_identical() {
    let untraced = run();

    let path = std::env::temp_dir()
        .join(format!("clapped-dse-trace-test-{}.jsonl", std::process::id()));
    clapped_obs::enable_jsonl(&path).unwrap();
    let traced = run();
    clapped_obs::reset();

    // Bit-identical trajectories: every evaluated point, every objective
    // bit and the whole hypervolume trace match exactly.
    assert_eq!(traced.evaluated.len(), untraced.evaluated.len());
    for ((ca, oa), (cb, ob)) in traced.evaluated.iter().zip(&untraced.evaluated) {
        assert_eq!(ca, cb);
        assert_eq!(oa, ob);
    }
    assert_eq!(traced.hv_trace, untraced.hv_trace);
    assert_eq!(traced.pareto_indices(), untraced.pareto_indices());

    // The trace itself is well-formed JSONL with the expected records.
    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 3, "start + events + trailing metrics");
    for line in &lines {
        let v = serde_json::from_str(line).expect("every trace line parses as JSON");
        assert!(v.get("type").and_then(|t| t.as_str()).is_some());
    }
    assert!(
        text.contains("\"dse.mbo.gp_fit\"") && text.contains("\"dse.mbo.hv\""),
        "MBO spans and hypervolume points must appear in the trace"
    );
    let _ = std::fs::remove_file(&path);
}
