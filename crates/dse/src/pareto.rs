//! Pareto dominance and front extraction (minimization).

/// True when `a` dominates `b`: no objective worse, at least one better.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    assert_eq!(a.len(), b.len(), "objective dimension mismatch");
    let mut strictly = false;
    for (&x, &y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly = true;
        }
    }
    strictly
}

/// Indices of the non-dominated points, in input order.
///
/// Accepts any slice of objective vectors (`Vec<f64>`, `&[f64]`, …) so
/// callers can pass borrowed views without materializing an owned
/// matrix. Duplicate points are all kept (none dominates the other).
/// Points with NaN or ±∞ coordinates cannot be ranked: they are
/// excluded from the front (and from dominating anything), and each
/// exclusion bumps the [`crate::nonfinite_warnings`] counter.
pub fn pareto_front<P: AsRef<[f64]>>(points: &[P]) -> Vec<usize> {
    let finite: Vec<bool> = points
        .iter()
        .map(|p| {
            let ok = p.as_ref().iter().all(|x| x.is_finite());
            if !ok {
                crate::hv::note_nonfinite();
            }
            ok
        })
        .collect();
    (0..points.len())
        .filter(|&i| {
            finite[i]
                && !points.iter().enumerate().any(|(j, p)| {
                    j != i && finite[j] && dominates(p.as_ref(), points[i].as_ref())
                })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_basics() {
        assert!(dominates(&[1.0, 1.0], &[2.0, 2.0]));
        assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0]));
        assert!(!dominates(&[1.0, 1.0], &[1.0, 1.0]), "equal points do not dominate");
    }

    #[test]
    fn front_extraction() {
        let pts = vec![
            vec![1.0, 5.0],
            vec![2.0, 3.0],
            vec![3.0, 4.0], // dominated by (2,3)
            vec![5.0, 1.0],
            vec![6.0, 6.0], // dominated by everything useful
        ];
        assert_eq!(pareto_front(&pts), vec![0, 1, 3]);
    }

    #[test]
    fn duplicates_are_kept() {
        let pts = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        assert_eq!(pareto_front(&pts), vec![0, 1]);
    }

    #[test]
    fn single_point_is_front() {
        assert_eq!(pareto_front(&[vec![3.0, 3.0]]), vec![0]);
        assert!(pareto_front::<Vec<f64>>(&[]).is_empty());
    }

    #[test]
    fn nonfinite_points_never_enter_the_front() {
        let pts = vec![
            vec![f64::NAN, 0.0],
            vec![1.0, 1.0],
            vec![f64::NEG_INFINITY, f64::NEG_INFINITY],
            vec![2.0, 0.5],
        ];
        // The −∞ point would otherwise dominate everything; the NaN
        // point would otherwise survive as "incomparable".
        assert_eq!(pareto_front(&pts), vec![1, 3]);
    }
}
