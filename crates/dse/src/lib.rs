//! Design-space exploration machinery for cross-layer approximation.
//!
//! Implements Section IV of the CLAppED paper:
//!
//! - the cross-layer configuration space ([`DesignSpace`],
//!   [`Configuration`]),
//! - Pareto dominance and front extraction ([`pareto_front`]),
//! - hypervolume (2D exact, 3D by slicing) and exclusive contributions
//!   ([`hypervolume`], [`exclusive_contributions`]),
//! - a Gaussian-process surrogate ([`Gp`]),
//! - **multi-objective Bayesian optimization** ([`mbo`]) whose
//!   acquisition function ranks random candidate configurations by
//!   predicted exclusive hypervolume contribution,
//! - baselines: random search ([`random_search`]), a light NSGA-II
//!   ([`nsga2`]) and weighted-sum simulated annealing
//!   ([`simulated_annealing`]).
//!
//! All objectives are **minimized**; negate quantities like PSNR before
//! feeding them in.
//!
//! # Examples
//!
//! ```
//! use clapped_dse::{hypervolume, pareto_front};
//!
//! let pts = vec![vec![1.0, 4.0], vec![2.0, 2.0], vec![4.0, 1.0], vec![3.0, 3.0]];
//! let front = pareto_front(&pts);
//! assert_eq!(front, vec![0, 1, 2]); // (3,3) is dominated by (2,2)
//! let hv = hypervolume(&pts, &[5.0, 5.0]);
//! assert!(hv > 0.0);
//! ```

mod checkpoint;
mod gp;
mod hv;
mod mbo;
mod pareto;
mod resilient;
mod search;
mod space;

pub use checkpoint::CheckpointCodec;
pub use gp::Gp;
pub use hv::{exclusive_contributions, hypervolume, nonfinite_warnings};
pub use mbo::{mbo, BatchOutcome, MboConfig, MboState, SearchResult};
pub use pareto::{dominates, pareto_front};
pub use resilient::{
    mbo_resilient, mbo_resilient_checkpointed, QuarantineEntry, ResilienceConfig,
    ResilientResult, StopReason,
};
pub use search::{nsga2, random_search, simulated_annealing, NsgaConfig, SaConfig};
pub use space::{Configuration, DesignSpace};

use std::error::Error;
use std::fmt;

/// Error type for DSE operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DseError {
    /// Objective vectors have inconsistent dimensions or exceed the
    /// supported hypervolume dimensionality.
    BadObjectives {
        /// Description of the problem.
        reason: String,
    },
    /// The surrogate model could not be fitted.
    Surrogate(String),
    /// Evaluating one candidate failed (panic or non-finite objectives)
    /// and the candidate was quarantined after bounded retries. The
    /// stepping engine treats this as "skip the slot", not as a fatal
    /// error.
    Evaluation {
        /// Why the candidate was rejected.
        reason: String,
    },
    /// The run was stopped early by a resilience policy (budget,
    /// deadline or failure limit). Carried as an error so it can unwind
    /// out of a step; [`mbo_resilient`] converts it into a graceful
    /// [`ResilientResult`].
    Stopped(StopReason),
    /// A checkpoint could not be parsed or is inconsistent.
    Checkpoint {
        /// Description of the problem.
        reason: String,
    },
}

impl fmt::Display for DseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DseError::BadObjectives { reason } => write!(f, "bad objectives: {reason}"),
            DseError::Surrogate(msg) => write!(f, "surrogate failure: {msg}"),
            DseError::Evaluation { reason } => write!(f, "candidate evaluation failed: {reason}"),
            DseError::Stopped(reason) => write!(f, "search stopped early: {reason:?}"),
            DseError::Checkpoint { reason } => write!(f, "bad checkpoint: {reason}"),
        }
    }
}

impl Error for DseError {}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, DseError>;
