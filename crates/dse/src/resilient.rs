//! Failure-isolated MBO driving.
//!
//! Objective functions in a cross-layer flow call into synthesis,
//! simulation and characterization code; a single panicking or
//! NaN-producing candidate should cost one batch slot, not the whole
//! run. [`mbo_resilient`] wraps candidate evaluation in
//! `catch_unwind`, retries flaky candidates a bounded number of times,
//! quarantines persistent failures, and enforces an evaluation budget /
//! wall-clock deadline — always returning the best result computed so
//! far together with a [`StopReason`].

use crate::checkpoint::CheckpointCodec;
use crate::mbo::{MboConfig, MboState, SearchResult};
use crate::{DseError, Result};
use rand_chacha::ChaCha8Rng;
use std::cell::{Cell, RefCell};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// Failure-isolation policy for [`mbo_resilient`].
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceConfig {
    /// Extra attempts per candidate after its first failed evaluation
    /// (covers flaky, non-deterministic objectives). `0` quarantines on
    /// the first failure.
    pub max_retries_per_candidate: usize,
    /// Total failed evaluation attempts across the run before the
    /// search stops with [`StopReason::FailureLimit`].
    pub max_total_failures: usize,
    /// Cap on successful true evaluations; when reached the run stops
    /// with [`StopReason::EvaluationBudget`]. `None` disables.
    pub max_evaluations: Option<usize>,
    /// Wall-clock deadline for the run; checked before every
    /// evaluation. `None` disables.
    pub deadline: Option<Duration>,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            max_retries_per_candidate: 1,
            max_total_failures: 32,
            max_evaluations: None,
            deadline: None,
        }
    }
}

/// Why a resilient run returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// All configured iterations ran.
    Completed,
    /// The evaluation budget was exhausted.
    EvaluationBudget,
    /// The wall-clock deadline passed.
    Deadline,
    /// Too many candidate evaluations failed.
    FailureLimit,
}

/// A candidate whose evaluation kept failing and was excluded from the
/// search.
#[derive(Debug, Clone)]
pub struct QuarantineEntry<C> {
    /// The rejected candidate.
    pub candidate: C,
    /// Evaluation attempts spent on it.
    pub attempts: usize,
    /// The final failure: panic message or a description of the
    /// non-finite objective vector.
    pub reason: String,
}

/// Outcome of [`mbo_resilient`]: the search result plus the failure
/// ledger.
#[derive(Debug, Clone)]
pub struct ResilientResult<C> {
    /// Evaluated points and hypervolume trace (possibly shorter than a
    /// fault-free run if slots were skipped or the run stopped early).
    pub result: SearchResult<C>,
    /// Why the run returned.
    pub stop_reason: StopReason,
    /// Candidates excluded after exhausting their retries.
    pub quarantined: Vec<QuarantineEntry<C>>,
    /// Successful true evaluations.
    pub evaluations: usize,
    /// Failed evaluation attempts (each retry counts).
    pub failures: usize,
}

fn panic_reason(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("objective panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("objective panicked: {s}")
    } else {
        "objective panicked with a non-string payload".to_string()
    }
}

fn drive<C: Clone>(
    config: &MboConfig,
    resilience: &ResilienceConfig,
    mut sample: impl FnMut(&mut ChaCha8Rng) -> C,
    encode: impl Fn(&C) -> Vec<f64>,
    objective: impl FnMut(&C) -> Vec<f64>,
    mut between_steps: impl FnMut(&MboState<C>),
) -> Result<ResilientResult<C>> {
    // Wall-clock budget via the clapped-obs clock facade (only obs reads
    // the clock directly).
    let deadline = clapped_obs::Deadline::from_budget(resilience.deadline);
    let objective = RefCell::new(objective);
    let evaluations = Cell::new(0usize);
    let failures = Cell::new(0usize);
    let quarantined: RefCell<Vec<QuarantineEntry<C>>> = RefCell::new(Vec::new());

    let mut evaluate = |c: &C| -> Result<Vec<f64>> {
        if let Some(max) = resilience.max_evaluations {
            if evaluations.get() >= max {
                return Err(DseError::Stopped(StopReason::EvaluationBudget));
            }
        }
        if deadline.expired() {
            return Err(DseError::Stopped(StopReason::Deadline));
        }
        let attempts = resilience.max_retries_per_candidate + 1;
        let mut last_reason = String::new();
        for attempt in 1..=attempts {
            let outcome = catch_unwind(AssertUnwindSafe(|| (objective.borrow_mut())(c)));
            match outcome {
                Ok(o) if o.iter().all(|v| v.is_finite()) => {
                    evaluations.set(evaluations.get() + 1);
                    return Ok(o);
                }
                Ok(o) => {
                    last_reason = format!("non-finite objective vector {o:?}");
                }
                Err(payload) => {
                    last_reason = panic_reason(payload);
                }
            }
            failures.set(failures.get() + 1);
            if failures.get() >= resilience.max_total_failures {
                quarantined.borrow_mut().push(QuarantineEntry {
                    candidate: c.clone(),
                    attempts: attempt,
                    reason: last_reason,
                });
                clapped_obs::count("dse.mbo.quarantined", 1);
                return Err(DseError::Stopped(StopReason::FailureLimit));
            }
        }
        quarantined.borrow_mut().push(QuarantineEntry {
            candidate: c.clone(),
            attempts,
            reason: last_reason.clone(),
        });
        clapped_obs::count("dse.mbo.quarantined", 1);
        Err(DseError::Evaluation { reason: last_reason })
    };

    let mut state = MboState::new(config)?;
    let stop_reason = loop {
        if state.is_complete() {
            break StopReason::Completed;
        }
        match state.step(&mut sample, &encode, &mut evaluate) {
            Ok(()) => between_steps(&state),
            Err(DseError::Stopped(reason)) => {
                // The step aborted mid-batch; seal the trace so the
                // result reports the hypervolume actually reached.
                if state.hv_trace.last().map(|&(n, _)| n) != Some(state.evaluated.len()) {
                    state.push_hv();
                }
                break reason;
            }
            Err(e) => return Err(e),
        }
    };

    Ok(ResilientResult {
        result: state.into_result(),
        stop_reason,
        quarantined: quarantined.into_inner(),
        evaluations: evaluations.get(),
        failures: failures.get(),
    })
}

/// Failure-isolated multi-objective Bayesian optimization.
///
/// Semantics match [`crate::mbo`] except that each candidate evaluation
/// runs under `catch_unwind`: a panic or a non-finite objective vector
/// is retried up to `resilience.max_retries_per_candidate` times and
/// then quarantined (the batch slot is skipped). The run also stops
/// gracefully on an evaluation budget, a wall-clock deadline, or an
/// accumulated failure limit, returning everything evaluated so far.
///
/// # Errors
///
/// Returns [`DseError::BadObjectives`] for configuration problems and
/// propagates surrogate failures. Candidate failures never surface as
/// errors; they land in [`ResilientResult::quarantined`].
pub fn mbo_resilient<C: Clone>(
    config: &MboConfig,
    resilience: &ResilienceConfig,
    sample: impl FnMut(&mut ChaCha8Rng) -> C,
    encode: impl Fn(&C) -> Vec<f64>,
    objective: impl FnMut(&C) -> Vec<f64>,
) -> Result<ResilientResult<C>> {
    drive(config, resilience, sample, encode, objective, |_| {})
}

/// [`mbo_resilient`] with periodic checkpointing: after every
/// `checkpoint_every` completed iterations (and after the initial
/// phase), the serialized [`MboState`] JSON is handed to
/// `on_checkpoint`. Feed the latest string back through
/// `MboState::from_checkpoint` to resume a crashed run deterministically.
///
/// # Errors
///
/// See [`mbo_resilient`].
///
/// # Panics
///
/// Panics if `checkpoint_every` is zero.
pub fn mbo_resilient_checkpointed<C: Clone + CheckpointCodec>(
    config: &MboConfig,
    resilience: &ResilienceConfig,
    checkpoint_every: usize,
    mut on_checkpoint: impl FnMut(&str),
    sample: impl FnMut(&mut ChaCha8Rng) -> C,
    encode: impl Fn(&C) -> Vec<f64>,
    objective: impl FnMut(&C) -> Vec<f64>,
) -> Result<ResilientResult<C>> {
    assert!(checkpoint_every > 0, "checkpoint_every must be at least 1");
    drive(config, resilience, sample, encode, objective, |state| {
        let after_initial = state.iterations_done() == 0;
        if after_initial || state.iterations_done() % checkpoint_every == 0 {
            on_checkpoint(&state.to_checkpoint());
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    // The concrete &Vec signature is required: the fn is passed directly
    // as an `FnMut(&Vec<f64>)` objective.
    #[allow(clippy::ptr_arg)]
    fn toy_objective(c: &Vec<f64>) -> Vec<f64> {
        let x = (c[0] + c[1]) / 2.0;
        vec![x, (1.0 - x) * (1.0 - x) + 0.05 * (c[0] - c[1]).abs()]
    }

    fn toy_sample(rng: &mut ChaCha8Rng) -> Vec<f64> {
        vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]
    }

    fn small_config(seed: u64) -> MboConfig {
        MboConfig {
            initial_samples: 8,
            iterations: 3,
            batch: 4,
            candidates: 15,
            reference: vec![1.5, 1.5],
            kappa: 1.0,
            explore_fraction: 0.1,
            seed,
        }
    }

    #[test]
    fn clean_run_completes_and_matches_plain_mbo() {
        let config = small_config(5);
        let plain = crate::mbo(&config, toy_sample, |c| c.clone(), toy_objective).unwrap();
        let resilient = mbo_resilient(
            &config,
            &ResilienceConfig::default(),
            toy_sample,
            |c| c.clone(),
            toy_objective,
        )
        .unwrap();
        assert_eq!(resilient.stop_reason, StopReason::Completed);
        assert!(resilient.quarantined.is_empty());
        assert_eq!(resilient.failures, 0);
        assert_eq!(resilient.result.hv_trace, plain.hv_trace);
    }

    #[test]
    fn panicking_candidate_is_quarantined_not_fatal() {
        let config = small_config(7);
        let mut calls = 0usize;
        let result = mbo_resilient(
            &config,
            &ResilienceConfig::default(),
            toy_sample,
            |c| c.clone(),
            move |c: &Vec<f64>| {
                calls += 1;
                if calls == 3 {
                    panic!("synthetic failure on call 3");
                }
                toy_objective(c)
            },
        )
        .unwrap();
        assert_eq!(result.stop_reason, StopReason::Completed);
        assert_eq!(result.quarantined.len(), 0); // retry succeeded
        assert_eq!(result.failures, 1);
        // One retry consumed; every slot still filled.
        assert_eq!(
            result.result.evaluated.len(),
            config.initial_samples + config.iterations * config.batch
        );
    }

    #[test]
    fn persistently_nan_candidate_is_skipped() {
        let config = small_config(13);
        // Candidates in the "poison" corner always produce NaN.
        let poison = |c: &Vec<f64>| c[0] < 0.25 && c[1] < 0.25;
        let result = mbo_resilient(
            &config,
            &ResilienceConfig { max_total_failures: 1000, ..ResilienceConfig::default() },
            toy_sample,
            |c| c.clone(),
            move |c: &Vec<f64>| {
                if poison(c) {
                    vec![f64::NAN, f64::NAN]
                } else {
                    toy_objective(c)
                }
            },
        )
        .unwrap();
        assert_eq!(result.stop_reason, StopReason::Completed);
        assert!(result.result.evaluated.iter().all(|(c, _)| !poison(c)));
        assert!(result
            .result
            .evaluated
            .iter()
            .all(|(_, o)| o.iter().all(|v| v.is_finite())));
        assert_eq!(
            result.result.evaluated.len() + result.quarantined.len(),
            config.initial_samples + config.iterations * config.batch
        );
    }

    #[test]
    fn failure_limit_stops_gracefully() {
        let config = small_config(21);
        let result = mbo_resilient(
            &config,
            &ResilienceConfig {
                max_retries_per_candidate: 0,
                max_total_failures: 3,
                ..ResilienceConfig::default()
            },
            toy_sample,
            |c| c.clone(),
            |_c: &Vec<f64>| panic!("always fails"),
        )
        .unwrap();
        assert_eq!(result.stop_reason, StopReason::FailureLimit);
        assert_eq!(result.failures, 3);
        assert!(result.result.evaluated.is_empty());
    }

    #[test]
    fn evaluation_budget_is_enforced() {
        let config = small_config(2);
        let result = mbo_resilient(
            &config,
            &ResilienceConfig { max_evaluations: Some(5), ..ResilienceConfig::default() },
            toy_sample,
            |c| c.clone(),
            toy_objective,
        )
        .unwrap();
        assert_eq!(result.stop_reason, StopReason::EvaluationBudget);
        assert_eq!(result.evaluations, 5);
        assert_eq!(result.result.evaluated.len(), 5);
        // The trace is sealed at the stopping point.
        assert_eq!(result.result.hv_trace.last().map(|&(n, _)| n), Some(5));
    }

    #[test]
    fn zero_deadline_stops_immediately() {
        let config = small_config(2);
        let result = mbo_resilient(
            &config,
            &ResilienceConfig {
                deadline: Some(Duration::from_secs(0)),
                ..ResilienceConfig::default()
            },
            toy_sample,
            |c| c.clone(),
            toy_objective,
        )
        .unwrap();
        assert_eq!(result.stop_reason, StopReason::Deadline);
        assert!(result.result.evaluated.is_empty());
    }
}
