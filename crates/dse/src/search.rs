//! Baseline search methods: random search, NSGA-II-lite and simulated
//! annealing.

use crate::hv::hypervolume;
use crate::mbo::{MboConfig, SearchResult};
use crate::pareto::dominates;
use crate::{DseError, Result};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Pure random search with the same evaluation budget bookkeeping as
/// [`crate::mbo`], for the paper's Fig. 12a comparison.
///
/// # Errors
///
/// Returns [`DseError::BadObjectives`] on dimension mismatches.
pub fn random_search<C: Clone>(
    config: &MboConfig,
    mut sample: impl FnMut(&mut ChaCha8Rng) -> C,
    mut objective: impl FnMut(&C) -> Vec<f64>,
) -> Result<SearchResult<C>> {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let d = config.reference.len();
    let mut evaluated: Vec<(C, Vec<f64>)> = Vec::new();
    let mut hv_trace = Vec::new();
    let record = |evaluated: &Vec<(C, Vec<f64>)>, hv_trace: &mut Vec<(usize, f64)>| {
        let objs: Vec<Vec<f64>> = evaluated.iter().map(|(_, o)| o.clone()).collect();
        hv_trace.push((evaluated.len(), hypervolume(&objs, &config.reference)));
    };
    for phase in 0..=config.iterations {
        let count = if phase == 0 {
            config.initial_samples
        } else {
            config.batch
        };
        for _ in 0..count {
            let c = sample(&mut rng);
            let o = objective(&c);
            if o.len() != d {
                return Err(DseError::BadObjectives {
                    reason: format!("objective dim {} vs reference dim {d}", o.len()),
                });
            }
            evaluated.push((c, o));
        }
        record(&evaluated, &mut hv_trace);
    }
    Ok(SearchResult {
        evaluated,
        hv_trace,
    })
}

/// NSGA-II-lite parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct NsgaConfig {
    /// Population size.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Per-child mutation probability.
    pub mutation_rate: f64,
    /// Hypervolume reference point for the trace.
    pub reference: Vec<f64>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NsgaConfig {
    fn default() -> Self {
        NsgaConfig {
            population: 24,
            generations: 10,
            mutation_rate: 0.5,
            reference: vec![1.0, 1.0],
            seed: 0,
        }
    }
}

/// A compact NSGA-II: non-dominated sorting plus crowding distance,
/// binary tournament, user-supplied crossover and mutation operators.
///
/// # Errors
///
/// Returns [`DseError::BadObjectives`] on dimension mismatches.
pub fn nsga2<C: Clone>(
    config: &NsgaConfig,
    mut sample: impl FnMut(&mut ChaCha8Rng) -> C,
    mut crossover: impl FnMut(&C, &C, &mut ChaCha8Rng) -> C,
    mut mutate: impl FnMut(&mut C, &mut ChaCha8Rng),
    mut objective: impl FnMut(&C) -> Vec<f64>,
) -> Result<SearchResult<C>> {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let d = config.reference.len();
    let mut evaluated: Vec<(C, Vec<f64>)> = Vec::new();
    let mut hv_trace: Vec<(usize, f64)> = Vec::new();
    let eval = |c: C,
                    evaluated: &mut Vec<(C, Vec<f64>)>,
                    objective: &mut dyn FnMut(&C) -> Vec<f64>|
     -> Result<Vec<f64>> {
        let o = objective(&c);
        if o.len() != d {
            return Err(DseError::BadObjectives {
                reason: format!("objective dim {} vs reference dim {d}", o.len()),
            });
        }
        evaluated.push((c, o.clone()));
        Ok(o)
    };

    // Initial population.
    let mut pop: Vec<(C, Vec<f64>)> = Vec::with_capacity(config.population);
    for _ in 0..config.population {
        let c = sample(&mut rng);
        let o = eval(c.clone(), &mut evaluated, &mut objective)?;
        pop.push((c, o));
    }
    let trace = |evaluated: &Vec<(C, Vec<f64>)>, hv_trace: &mut Vec<(usize, f64)>| {
        let objs: Vec<Vec<f64>> = evaluated.iter().map(|(_, o)| o.clone()).collect();
        hv_trace.push((evaluated.len(), hypervolume(&objs, &config.reference)));
    };
    trace(&evaluated, &mut hv_trace);

    for _ in 0..config.generations {
        let (ranks, crowding) = rank_and_crowd(&pop);
        // Binary tournament selection by (rank, -crowding).
        let better = |i: usize, j: usize| -> usize {
            if rank_crowd_cmp(ranks[i], crowding[i], ranks[j], crowding[j]).is_lt() {
                i
            } else {
                j
            }
        };
        let mut offspring: Vec<(C, Vec<f64>)> = Vec::with_capacity(config.population);
        while offspring.len() < config.population {
            let p1 = better(rng.gen_range(0..pop.len()), rng.gen_range(0..pop.len()));
            let p2 = better(rng.gen_range(0..pop.len()), rng.gen_range(0..pop.len()));
            let mut child = crossover(&pop[p1].0, &pop[p2].0, &mut rng);
            if rng.gen_bool(config.mutation_rate) {
                mutate(&mut child, &mut rng);
            }
            let o = eval(child.clone(), &mut evaluated, &mut objective)?;
            offspring.push((child, o));
        }
        // Environmental selection from the combined pool.
        pop.extend(offspring);
        let (ranks, crowding) = rank_and_crowd(&pop);
        let mut order: Vec<usize> = (0..pop.len()).collect();
        order.sort_by(|&a, &b| {
            rank_crowd_cmp(ranks[a], crowding[a], ranks[b], crowding[b])
        });
        let keep: Vec<(C, Vec<f64>)> = order
            .into_iter()
            .take(config.population)
            .map(|i| pop[i].clone())
            .collect();
        pop = keep;
        trace(&evaluated, &mut hv_trace);
    }
    Ok(SearchResult {
        evaluated,
        hv_trace,
    })
}

/// NSGA-II preference order: lower rank first, then larger crowding
/// distance. `f64::total_cmp` gives a panic-free total order in which
/// positive NaN sorts above +inf, so a NaN crowding distance (only
/// possible for degenerate fronts) ranks as the largest distance and is
/// preferred — the same preference the old NaN-to-inf shim produced.
fn rank_crowd_cmp(
    rank_a: usize,
    crowd_a: f64,
    rank_b: usize,
    crowd_b: f64,
) -> std::cmp::Ordering {
    rank_a.cmp(&rank_b).then(crowd_b.total_cmp(&crowd_a))
}

/// Fast non-dominated sorting plus crowding distances.
fn rank_and_crowd<C>(pop: &[(C, Vec<f64>)]) -> (Vec<usize>, Vec<f64>) {
    let n = pop.len();
    let mut ranks = vec![usize::MAX; n];
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut rank = 0usize;
    while !remaining.is_empty() {
        let front: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|&i| {
                !remaining
                    .iter()
                    .any(|&j| j != i && dominates(&pop[j].1, &pop[i].1))
            })
            .collect();
        for &i in &front {
            ranks[i] = rank;
        }
        remaining.retain(|i| !front.contains(i));
        rank += 1;
    }
    // Crowding distance per rank.
    let d = pop.first().map(|(_, o)| o.len()).unwrap_or(0);
    let mut crowding = vec![0.0f64; n];
    for r in 0..rank {
        let members: Vec<usize> = (0..n).filter(|&i| ranks[i] == r).collect();
        for k in 0..d {
            let mut sorted = members.clone();
            sorted.sort_by(|&a, &b| pop[a].1[k].total_cmp(&pop[b].1[k]));
            let Some(&last) = sorted.last() else { continue };
            let lo = pop[sorted[0]].1[k];
            let hi = pop[last].1[k];
            crowding[sorted[0]] = f64::INFINITY;
            crowding[last] = f64::INFINITY;
            if hi > lo {
                for w in sorted.windows(3) {
                    crowding[w[1]] += (pop[w[2]].1[k] - pop[w[0]].1[k]) / (hi - lo);
                }
            }
        }
    }
    (ranks, crowding)
}

/// Simulated-annealing parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SaConfig {
    /// Number of annealing steps.
    pub steps: usize,
    /// Initial temperature (on the weighted-sum scale).
    pub t0: f64,
    /// Geometric cooling rate per step.
    pub cooling: f64,
    /// Objective weights for the scalarization.
    pub weights: Vec<f64>,
    /// Hypervolume reference point for the trace.
    pub reference: Vec<f64>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SaConfig {
    fn default() -> Self {
        SaConfig {
            steps: 200,
            t0: 1.0,
            cooling: 0.98,
            weights: vec![0.5, 0.5],
            reference: vec![1.0, 1.0],
            seed: 0,
        }
    }
}

/// Weighted-sum simulated annealing over a mutation neighbourhood.
///
/// # Errors
///
/// Returns [`DseError::BadObjectives`] on dimension mismatches.
pub fn simulated_annealing<C: Clone>(
    config: &SaConfig,
    mut sample: impl FnMut(&mut ChaCha8Rng) -> C,
    mut mutate: impl FnMut(&mut C, &mut ChaCha8Rng),
    mut objective: impl FnMut(&C) -> Vec<f64>,
) -> Result<SearchResult<C>> {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let d = config.reference.len();
    let scalar = |o: &[f64]| -> f64 { o.iter().zip(&config.weights).map(|(x, w)| x * w).sum() };
    let mut evaluated: Vec<(C, Vec<f64>)> = Vec::new();
    let mut hv_trace: Vec<(usize, f64)> = Vec::new();

    let mut current = sample(&mut rng);
    let mut current_obj = objective(&current);
    if current_obj.len() != d {
        return Err(DseError::BadObjectives {
            reason: format!("objective dim {} vs reference dim {d}", current_obj.len()),
        });
    }
    evaluated.push((current.clone(), current_obj.clone()));
    let mut t = config.t0;
    for step in 0..config.steps {
        let mut cand = current.clone();
        mutate(&mut cand, &mut rng);
        let cand_obj = objective(&cand);
        if cand_obj.len() != d {
            return Err(DseError::BadObjectives {
                reason: format!("objective dim {} vs reference dim {d}", cand_obj.len()),
            });
        }
        evaluated.push((cand.clone(), cand_obj.clone()));
        let delta = scalar(&cand_obj) - scalar(&current_obj);
        if delta <= 0.0 || rng.gen_bool((-delta / t.max(1e-12)).exp().clamp(0.0, 1.0)) {
            current = cand;
            current_obj = cand_obj;
        }
        t *= config.cooling;
        if (step + 1) % 20 == 0 || step + 1 == config.steps {
            let objs: Vec<Vec<f64>> = evaluated.iter().map(|(_, o)| o.clone()).collect();
            hv_trace.push((evaluated.len(), hypervolume(&objs, &config.reference)));
        }
    }
    Ok(SearchResult {
        evaluated,
        hv_trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    // The concrete &Vec signature is required: the fn is passed directly
    // as an `FnMut(&Vec<f64>)` objective.
    #[allow(clippy::ptr_arg)]
    fn toy_objective(c: &Vec<f64>) -> Vec<f64> {
        let x = (c[0] + c[1]) / 2.0;
        vec![x, (1.0 - x) * (1.0 - x) + 0.05 * (c[0] - c[1]).abs()]
    }

    fn toy_sample(rng: &mut ChaCha8Rng) -> Vec<f64> {
        vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]
    }

    // The concrete &Vec signature is required: the fn is passed directly
    // as an `FnMut(&Vec<f64>, &Vec<f64>, ..)` callback.
    #[allow(clippy::ptr_arg)]
    fn toy_crossover(a: &Vec<f64>, b: &Vec<f64>, rng: &mut ChaCha8Rng) -> Vec<f64> {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| if rng.gen_bool(0.5) { x } else { y })
            .collect()
    }

    // Same: passed directly as an `FnMut(&mut Vec<f64>, ..)` callback.
    #[allow(clippy::ptr_arg)]
    fn toy_mutate(c: &mut Vec<f64>, rng: &mut ChaCha8Rng) {
        let i = rng.gen_range(0..c.len());
        c[i] = (c[i] + rng.gen_range(-0.2f64..0.2)).clamp(0.0, 1.0);
    }

    #[test]
    fn random_search_budget_and_trace() {
        let config = MboConfig {
            initial_samples: 10,
            iterations: 4,
            batch: 5,
            candidates: 0,
            reference: vec![1.5, 1.5],
            kappa: 1.0,
            explore_fraction: 0.1,
            seed: 1,
        };
        let r = random_search(&config, toy_sample, toy_objective).unwrap();
        assert_eq!(r.evaluated.len(), 30);
        assert_eq!(r.hv_trace.len(), 5);
        for w in r.hv_trace.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-12);
        }
    }

    #[test]
    fn nsga2_runs_and_improves() {
        let config = NsgaConfig {
            population: 12,
            generations: 6,
            mutation_rate: 0.6,
            reference: vec![1.5, 1.5],
            seed: 5,
        };
        let r = nsga2(
            &config,
            toy_sample,
            toy_crossover,
            toy_mutate,
            toy_objective,
        )
        .unwrap();
        assert_eq!(r.evaluated.len(), 12 * 7);
        assert!(r.final_hypervolume() >= r.hv_trace[0].1);
    }

    #[test]
    fn sa_runs_and_tracks() {
        let config = SaConfig {
            steps: 100,
            reference: vec![1.5, 1.5],
            ..SaConfig::default()
        };
        let r = simulated_annealing(&config, toy_sample, toy_mutate, toy_objective).unwrap();
        assert_eq!(r.evaluated.len(), 101);
        assert!(!r.hv_trace.is_empty());
        // SA should find a decent scalarized point.
        let best = r
            .evaluated
            .iter()
            .map(|(_, o)| o[0] * 0.5 + o[1] * 0.5)
            .fold(f64::INFINITY, f64::min);
        assert!(best < 0.5, "best scalarized {best}");
    }

    #[test]
    fn searches_are_deterministic() {
        let config = MboConfig {
            initial_samples: 8,
            iterations: 2,
            batch: 4,
            candidates: 0,
            reference: vec![1.5, 1.5],
            kappa: 1.0,
            explore_fraction: 0.1,
            seed: 9,
        };
        let a = random_search(&config, toy_sample, toy_objective).unwrap();
        let b = random_search(&config, toy_sample, toy_objective).unwrap();
        assert_eq!(a.hv_trace, b.hv_trace);
    }
}
