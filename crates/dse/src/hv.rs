//! Hypervolume computation (minimization) and exclusive contributions.

use crate::pareto::pareto_front;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of objective vectors rejected for containing NaN
/// or ±∞. Non-finite points cannot be ranked and would silently corrupt
/// hypervolumes and fronts, so they are dropped — but never silently:
/// every rejection increments this counter.
static NONFINITE_WARNINGS: AtomicU64 = AtomicU64::new(0);

/// Number of non-finite objective vectors dropped by [`hypervolume`] /
/// [`pareto_front`] since process start. A rising value signals a
/// misbehaving objective function upstream.
pub fn nonfinite_warnings() -> u64 {
    NONFINITE_WARNINGS.load(Ordering::Relaxed)
}

/// Records one rejected point. Shared by the hypervolume and Pareto
/// paths.
pub(crate) fn note_nonfinite() {
    NONFINITE_WARNINGS.fetch_add(1, Ordering::Relaxed);
}

/// Hypervolume dominated by `points` with respect to `reference`
/// (minimization: the reference must be no better than every point in
/// every objective; points beyond the reference contribute nothing).
///
/// Dimensions 1–3 use exact sweep algorithms; higher dimensions use the
/// WFG exclusive-hypervolume recursion (exact, exponential worst case —
/// fine for the front sizes DSE produces).
///
/// # Panics
///
/// Panics if dimensions are inconsistent or zero.
///
/// # Examples
///
/// ```
/// let hv = clapped_dse::hypervolume(&[vec![1.0, 1.0]], &[3.0, 3.0]);
/// assert!((hv - 4.0).abs() < 1e-12);
/// ```
pub fn hypervolume<P: AsRef<[f64]>>(points: &[P], reference: &[f64]) -> f64 {
    let d = reference.len();
    assert!(d >= 1, "need at least one objective");
    for p in points {
        assert_eq!(p.as_ref().len(), d, "objective dimension mismatch");
    }
    // Reject non-finite points (−∞ coordinates would otherwise claim
    // infinite volume; NaN would poison the sweeps), then clip to the
    // reference box and drop non-contributing points.
    let clipped: Vec<Vec<f64>> = points
        .iter()
        .map(AsRef::as_ref)
        .filter(|p| {
            if p.iter().any(|x| !x.is_finite()) {
                note_nonfinite();
                return false;
            }
            p.iter().zip(reference).all(|(&x, &r)| x < r)
        })
        .map(<[f64]>::to_vec)
        .collect();
    if clipped.is_empty() {
        return 0.0;
    }
    let front: Vec<Vec<f64>> = pareto_front(&clipped)
        .into_iter()
        .map(|i| clipped[i].clone())
        .collect();
    match d {
        1 => reference[0] - front.iter().map(|p| p[0]).fold(f64::INFINITY, f64::min),
        2 => hv2(&front, reference),
        3 => hv3(&front, reference),
        _ => wfg(&front, reference),
    }
}

/// WFG hypervolume: `hv(S) = Σ_i exclusive(p_i, {p_1..p_{i-1}})` where
/// the exclusive volume is the point's box minus the hypervolume of the
/// other points clipped into that box.
fn wfg(front: &[Vec<f64>], reference: &[f64]) -> f64 {
    let mut total = 0.0;
    for (i, p) in front.iter().enumerate() {
        // Box volume of p against the reference.
        let box_vol: f64 = p.iter().zip(reference).map(|(&x, &r)| r - x).product();
        // Previous points clipped into p's box (their coordinates limited
        // below by p's).
        let clipped: Vec<Vec<f64>> = front[..i]
            .iter()
            .map(|q| q.iter().zip(p).map(|(&qv, &pv)| qv.max(pv)).collect())
            .collect();
        // With a shared reference corner, box(q∨p) = box(q) ∩ box(p), so
        // the union of the clipped boxes is exactly the overlap volume.
        total += box_vol - hypervolume(&clipped, reference);
    }
    total
}

fn hv2(front: &[Vec<f64>], reference: &[f64]) -> f64 {
    let mut pts: Vec<(f64, f64)> = front.iter().map(|p| (p[0], p[1])).collect();
    pts.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
    let mut hv = 0.0;
    let mut prev_y = reference[1];
    for &(x, y) in &pts {
        if y < prev_y {
            hv += (reference[0] - x) * (prev_y - y);
            prev_y = y;
        }
    }
    hv
}

/// 3D hypervolume by sweeping the third objective and accumulating 2D
/// slices.
fn hv3(front: &[Vec<f64>], reference: &[f64]) -> f64 {
    let mut zs: Vec<f64> = front.iter().map(|p| p[2]).collect();
    zs.sort_by(f64::total_cmp);
    zs.dedup();
    zs.push(reference[2]);
    let mut hv = 0.0;
    for w in zs.windows(2) {
        let (z0, z1) = (w[0], w[1]);
        if z1 <= z0 {
            continue;
        }
        // Points alive in slice [z0, z1).
        let slice: Vec<Vec<f64>> = front
            .iter()
            .filter(|p| p[2] <= z0)
            .map(|p| vec![p[0], p[1]])
            .collect();
        if slice.is_empty() {
            continue;
        }
        let area_front: Vec<Vec<f64>> = pareto_front(&slice)
            .into_iter()
            .map(|i| slice[i].clone())
            .collect();
        hv += hv2(&area_front, &reference[..2]) * (z1 - z0);
    }
    hv
}

/// Exclusive hypervolume contribution of each point: `hv(S) − hv(S\{i})`.
///
/// Dominated points contribute exactly zero.
///
/// # Panics
///
/// See [`hypervolume`].
pub fn exclusive_contributions<P: AsRef<[f64]>>(points: &[P], reference: &[f64]) -> Vec<f64> {
    let total = hypervolume(points, reference);
    (0..points.len())
        .map(|i| {
            let rest: Vec<&[f64]> = points
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, p)| p.as_ref())
                .collect();
            (total - hypervolume(&rest, reference)).max(0.0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_point_box() {
        let hv = hypervolume(&[vec![1.0, 2.0]], &[4.0, 4.0]);
        assert!((hv - 6.0).abs() < 1e-12);
    }

    #[test]
    fn two_point_staircase() {
        let pts = vec![vec![1.0, 3.0], vec![3.0, 1.0]];
        // Union of boxes to (4,4): 3*1 + 1*3 + overlap region (1..3)x... =
        // area = (4-1)*(4-3) + (4-3)*(3-1) = 3 + 2 = 5.
        let hv = hypervolume(&pts, &[4.0, 4.0]);
        assert!((hv - 5.0).abs() < 1e-12, "hv {hv}");
    }

    #[test]
    fn dominated_points_add_nothing() {
        let base = hypervolume(&[vec![1.0, 1.0]], &[4.0, 4.0]);
        let with_dominated = hypervolume(&[vec![1.0, 1.0], vec![2.0, 2.0]], &[4.0, 4.0]);
        assert!((base - with_dominated).abs() < 1e-12);
    }

    #[test]
    fn points_beyond_reference_are_clipped() {
        let hv = hypervolume(&[vec![5.0, 5.0]], &[4.0, 4.0]);
        assert_eq!(hv, 0.0);
    }

    #[test]
    fn hv_is_monotone_in_point_addition() {
        let r = [10.0, 10.0];
        let a = hypervolume(&[vec![5.0, 5.0]], &r);
        let b = hypervolume(&[vec![5.0, 5.0], vec![2.0, 8.0]], &r);
        assert!(b >= a);
    }

    #[test]
    fn hv3_matches_manual_box() {
        // One point at (1,1,1) against (2,2,2): volume 1.
        let hv = hypervolume(&[vec![1.0, 1.0, 1.0]], &[2.0, 2.0, 2.0]);
        assert!((hv - 1.0).abs() < 1e-12);
        // Two disjoint staircase points.
        let pts = vec![vec![0.0, 1.0, 1.0], vec![1.0, 0.0, 0.0]];
        let hv = hypervolume(&pts, &[2.0, 2.0, 2.0]);
        // Manual: point B box = 1*2*2 = 4... compute via inclusion-
        // exclusion: A box = 2*1*1 = 2; B box = 1*2*2 = 4; overlap box
        // (max coords) = (1,1,1) -> 1*1*1 = 1. Union = 5.
        assert!((hv - 5.0).abs() < 1e-12, "hv {hv}");
    }

    #[test]
    fn wfg_matches_sweep_in_3d() {
        // Deterministic pseudo-random 3D points.
        let pts: Vec<Vec<f64>> = (0..12)
            .map(|i| {
                vec![
                    ((i * 37 + 11) % 97) as f64 / 97.0,
                    ((i * 53 + 29) % 89) as f64 / 89.0,
                    ((i * 71 + 43) % 83) as f64 / 83.0,
                ]
            })
            .collect();
        let reference = [1.2, 1.2, 1.2];
        let sweep = hypervolume(&pts, &reference);
        let front: Vec<Vec<f64>> = pareto_front(&pts).into_iter().map(|i| pts[i].clone()).collect();
        let general = wfg(&front, &reference);
        assert!((sweep - general).abs() < 1e-9, "{sweep} vs {general}");
    }

    #[test]
    fn four_dimensional_boxes() {
        // One point: the box volume.
        let hv = hypervolume(&[vec![0.5, 0.5, 0.5, 0.5]], &[1.0, 1.0, 1.0, 1.0]);
        assert!((hv - 0.0625).abs() < 1e-12);
        // Two identical points: still the box volume.
        let hv2 = hypervolume(
            &[vec![0.5, 0.5, 0.5, 0.5], vec![0.5, 0.5, 0.5, 0.5]],
            &[1.0, 1.0, 1.0, 1.0],
        );
        assert!((hv2 - 0.0625).abs() < 1e-12);
        // Two disjoint-ish points: inclusion-exclusion by hand.
        let a = vec![0.0, 0.5, 0.5, 0.5];
        let b = vec![0.5, 0.0, 0.0, 0.0];
        let va = 1.0 * 0.5 * 0.5 * 0.5;
        let vb: f64 = 0.5;
        let overlap = 0.5 * 0.5 * 0.5 * 0.5;
        let hv4 = hypervolume(&[a, b], &[1.0, 1.0, 1.0, 1.0]);
        assert!((hv4 - (va + vb - overlap)).abs() < 1e-12, "{hv4}");
    }

    #[test]
    fn nonfinite_points_are_dropped_with_warning() {
        let before = nonfinite_warnings();
        let clean = hypervolume(&[vec![1.0, 1.0]], &[4.0, 4.0]);
        let polluted = hypervolume(
            &[
                vec![1.0, 1.0],
                vec![f64::NAN, 0.5],
                vec![f64::NEG_INFINITY, 0.5],
                vec![0.5, f64::INFINITY],
            ],
            &[4.0, 4.0],
        );
        assert!((clean - polluted).abs() < 1e-12, "{clean} vs {polluted}");
        assert!(polluted.is_finite());
        assert!(nonfinite_warnings() >= before + 3);
    }

    #[test]
    fn exclusive_contribution_zero_for_dominated() {
        let pts = vec![vec![1.0, 1.0], vec![2.0, 2.0], vec![0.5, 3.0]];
        let c = exclusive_contributions(&pts, &[4.0, 4.0]);
        assert!(c[1].abs() < 1e-12);
        assert!(c[0] > 0.0);
        assert!(c[2] > 0.0);
    }

    #[test]
    fn contributions_sum_at_most_total() {
        let pts = vec![vec![1.0, 3.0], vec![2.0, 2.0], vec![3.0, 1.0]];
        let r = [5.0, 5.0];
        let total = hypervolume(&pts, &r);
        let sum: f64 = exclusive_contributions(&pts, &r).iter().sum();
        assert!(sum <= total + 1e-12);
    }
}
