//! The cross-layer configuration space.

use clapped_imgproc::{ConvConfig, ConvMode};
use rand::seq::SliceRandom;
use rand::Rng;

/// Domains of every cross-layer DoF (paper Fig. 2): DATA scaling,
/// SOFTWARE window/mode/stride/downsampling, HARDWARE per-tap multiplier
/// selection from a catalog of `catalog_size` operators.
///
/// # Examples
///
/// ```
/// use clapped_dse::DesignSpace;
/// use rand::SeedableRng;
///
/// let space = DesignSpace::paper_default(18);
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let c = space.sample(&mut rng);
/// assert!(space.contains(&c));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSpace {
    /// Allowed window sizes (odd).
    pub windows: Vec<usize>,
    /// Allowed stride lengths.
    pub strides: Vec<usize>,
    /// Allowed downsampling settings.
    pub downsample: Vec<bool>,
    /// Allowed convolution modes.
    pub modes: Vec<ConvMode>,
    /// Allowed DATA scaling factors.
    pub scales: Vec<usize>,
    /// Number of multiplier choices in the operator catalog.
    pub catalog_size: usize,
}

impl DesignSpace {
    /// The space the paper explores: 3×3 window, strides {1, 2},
    /// optional downsampling, 2D or separable mode, scaling {1, 2, 3},
    /// free multiplier choice per tap.
    ///
    /// # Panics
    ///
    /// Panics if `catalog_size` is zero.
    pub fn paper_default(catalog_size: usize) -> DesignSpace {
        assert!(catalog_size > 0, "catalog must be non-empty");
        DesignSpace {
            windows: vec![3],
            strides: vec![1, 2],
            downsample: vec![false, true],
            modes: vec![ConvMode::TwoD, ConvMode::Separable],
            scales: vec![1, 2, 3],
            catalog_size,
        }
    }

    /// Log2 of the number of distinct design points (a capacity
    /// measure; the paper's "2 × 3⁹" style counting).
    pub fn log2_size(&self) -> f64 {
        let per_window: f64 = self
            .windows
            .iter()
            .map(|w| (self.catalog_size as f64).powi((w * w) as i32))
            .sum();
        (self.strides.len() as f64
            * self.downsample.len() as f64
            * self.modes.len() as f64
            * self.scales.len() as f64
            * per_window)
            .log2()
    }

    /// Draws a uniformly random configuration.
    ///
    /// # Panics
    ///
    /// Panics if any domain list is empty.
    pub fn sample(&self, rng: &mut impl Rng) -> Configuration {
        let window = *self.windows.choose(rng).expect("non-empty windows");
        Configuration {
            window,
            stride: *self.strides.choose(rng).expect("non-empty strides"),
            downsample: *self.downsample.choose(rng).expect("non-empty downsample"),
            mode: *self.modes.choose(rng).expect("non-empty modes"),
            scale: *self.scales.choose(rng).expect("non-empty scales"),
            mul_indices: (0..window * window)
                .map(|_| rng.gen_range(0..self.catalog_size))
                .collect(),
        }
    }

    /// Checks whether a configuration lies inside this space.
    pub fn contains(&self, c: &Configuration) -> bool {
        self.windows.contains(&c.window)
            && self.strides.contains(&c.stride)
            && self.downsample.contains(&c.downsample)
            && self.modes.contains(&c.mode)
            && self.scales.contains(&c.scale)
            && c.mul_indices.len() == c.window * c.window
            && c.mul_indices.iter().all(|&i| i < self.catalog_size)
    }

    /// Uniform crossover of two configurations (for the NSGA-II
    /// baseline): each gene is taken from either parent.
    ///
    /// # Panics
    ///
    /// Panics if the parents have different window sizes.
    pub fn crossover(
        &self,
        a: &Configuration,
        b: &Configuration,
        rng: &mut impl Rng,
    ) -> Configuration {
        assert_eq!(a.window, b.window, "crossover requires matching windows");
        let pick = |rng: &mut dyn rand::RngCore| rng.gen_ratio(1, 2);
        Configuration {
            window: a.window,
            stride: if pick(rng) { a.stride } else { b.stride },
            downsample: if pick(rng) { a.downsample } else { b.downsample },
            mode: if pick(rng) { a.mode } else { b.mode },
            scale: if pick(rng) { a.scale } else { b.scale },
            mul_indices: a
                .mul_indices
                .iter()
                .zip(&b.mul_indices)
                .map(|(&x, &y)| if pick(rng) { x } else { y })
                .collect(),
        }
    }

    /// Mutates one randomly chosen gene in place.
    pub fn mutate(&self, c: &mut Configuration, rng: &mut impl Rng) {
        match rng.gen_range(0..5) {
            0 => c.stride = *self.strides.choose(rng).expect("non-empty"),
            1 => c.downsample = *self.downsample.choose(rng).expect("non-empty"),
            2 => c.mode = *self.modes.choose(rng).expect("non-empty"),
            3 => c.scale = *self.scales.choose(rng).expect("non-empty"),
            _ => {
                let slot = rng.gen_range(0..c.mul_indices.len());
                c.mul_indices[slot] = rng.gen_range(0..self.catalog_size);
            }
        }
    }
}

/// One cross-layer design point.
///
/// `mul_indices` always holds `window²` catalog indices; separable-mode
/// executions consume the first `2·window` of them.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Configuration {
    /// Window size.
    pub window: usize,
    /// Stride length.
    pub stride: usize,
    /// Downsampling flag.
    pub downsample: bool,
    /// Convolution mode.
    pub mode: ConvMode,
    /// DATA scaling factor.
    pub scale: usize,
    /// Per-tap multiplier catalog indices (`window²` entries).
    pub mul_indices: Vec<usize>,
}

impl Configuration {
    /// The golden reference configuration: stride 1, no downsampling,
    /// 2D mode, no scaling, operator 0 (by convention the exact
    /// multiplier) everywhere.
    pub fn golden(window: usize) -> Configuration {
        Configuration {
            window,
            stride: 1,
            downsample: false,
            mode: ConvMode::TwoD,
            scale: 1,
            mul_indices: vec![0; window * window],
        }
    }

    /// The equivalent convolution-engine configuration.
    pub fn conv_config(&self) -> ConvConfig {
        ConvConfig {
            window: self.window,
            stride: self.stride,
            downsample: self.downsample,
            mode: self.mode,
            scale: self.scale,
        }
    }

    /// Multiplier indices actually consumed by this configuration's
    /// mode (`window²` for 2D, `2·window` for separable).
    pub fn active_mul_indices(&self) -> &[usize] {
        match self.mode {
            ConvMode::TwoD => &self.mul_indices,
            ConvMode::Separable => &self.mul_indices[..2 * self.window],
        }
    }

    /// Scalar (non-multiplier) DoFs as features:
    /// `[stride, downsample, mode, scale]`.
    pub fn dof_features(&self) -> Vec<f64> {
        vec![
            self.stride as f64,
            f64::from(u8::from(self.downsample)),
            match self.mode {
                ConvMode::TwoD => 0.0,
                ConvMode::Separable => 1.0,
            },
            self.scale as f64,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn samples_are_in_space_and_diverse() {
        let space = DesignSpace::paper_default(10);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let configs: Vec<Configuration> = (0..64).map(|_| space.sample(&mut rng)).collect();
        assert!(configs.iter().all(|c| space.contains(c)));
        let strides: std::collections::HashSet<usize> =
            configs.iter().map(|c| c.stride).collect();
        assert!(strides.len() > 1, "sampling should hit several strides");
    }

    #[test]
    fn log2_size_matches_paper_intuition() {
        // 2 multiplier choices for 9 taps and one other binary DoF:
        // 2 * 2^9 = 2^10 points.
        let space = DesignSpace {
            windows: vec![3],
            strides: vec![1, 2],
            downsample: vec![false],
            modes: vec![ConvMode::TwoD],
            scales: vec![1],
            catalog_size: 2,
        };
        assert!((space.log2_size() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn golden_is_exact_everything() {
        let g = Configuration::golden(3);
        assert_eq!(g.stride, 1);
        assert!(!g.downsample);
        assert_eq!(g.scale, 1);
        assert!(g.mul_indices.iter().all(|&i| i == 0));
        assert_eq!(g.conv_config().taps(), 9);
    }

    #[test]
    fn active_indices_depend_on_mode() {
        let mut c = Configuration::golden(3);
        assert_eq!(c.active_mul_indices().len(), 9);
        c.mode = ConvMode::Separable;
        assert_eq!(c.active_mul_indices().len(), 6);
    }

    #[test]
    fn crossover_and_mutation_stay_in_space() {
        let space = DesignSpace::paper_default(6);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let a = space.sample(&mut rng);
        let b = space.sample(&mut rng);
        for _ in 0..32 {
            let mut child = space.crossover(&a, &b, &mut rng);
            space.mutate(&mut child, &mut rng);
            assert!(space.contains(&child));
        }
    }

    #[test]
    fn dof_features_shape() {
        let c = Configuration::golden(3);
        let f = c.dof_features();
        assert_eq!(f, vec![1.0, 0.0, 0.0, 1.0]);
    }
}
