//! Gaussian-process regression: the probabilistic surrogate of the MBO
//! loop.

use crate::{DseError, Result};
use clapped_la::{Cholesky, Mat, Standardizer};
use std::cell::RefCell;

thread_local! {
    /// Scratch for [`Gp::try_predict`]'s `k*` vector and variance solve:
    /// single-point prediction runs millions of times per DSE, and the
    /// two per-call heap allocations dominated its profile.
    static PREDICT_SCRATCH: RefCell<(Vec<f64>, Vec<f64>)> =
        const { RefCell::new((Vec::new(), Vec::new())) };
}

/// A Gaussian-process regressor with an RBF kernel.
///
/// Features and targets are standardized internally. The lengthscale and
/// noise level are selected from a small grid by log marginal likelihood
/// — adequate for the few-hundred-sample surrogates MBO maintains.
///
/// # Examples
///
/// ```
/// use clapped_dse::Gp;
///
/// let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 4.0]).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| (x[0]).sin()).collect();
/// let gp = Gp::fit(&xs, &ys).unwrap();
/// let (mean, var) = gp.predict(&[2.0]);
/// assert!((mean - 2.0f64.sin()).abs() < 0.1);
/// assert!(var >= 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Gp {
    x_std: Standardizer,
    y_mean: f64,
    y_scale: f64,
    train_x: Vec<Vec<f64>>,
    alpha: Vec<f64>,
    chol: Cholesky,
    lengthscale: f64,
    noise: f64,
}

impl Gp {
    /// Fits the GP to a dataset.
    ///
    /// # Errors
    ///
    /// Returns [`DseError::Surrogate`] when the dataset is empty,
    /// inconsistent, or the kernel matrix cannot be factored at any grid
    /// point.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64]) -> Result<Gp> {
        if xs.is_empty() || xs.len() != ys.len() {
            return Err(DseError::Surrogate(format!(
                "{} samples vs {} targets",
                xs.len(),
                ys.len()
            )));
        }
        let dim = xs[0].len();
        if dim == 0 || xs.iter().any(|r| r.len() != dim) {
            return Err(DseError::Surrogate("inconsistent feature rows".to_string()));
        }
        if xs.iter().flatten().any(|v| !v.is_finite()) {
            return Err(DseError::Surrogate("non-finite feature values".to_string()));
        }
        if ys.iter().any(|v| !v.is_finite()) {
            return Err(DseError::Surrogate("non-finite target values".to_string()));
        }
        let x_std = Standardizer::fit(xs);
        let xt = x_std.transform(xs);
        let y_mean = ys.iter().sum::<f64>() / ys.len() as f64;
        let y_var =
            ys.iter().map(|y| (y - y_mean) * (y - y_mean)).sum::<f64>() / ys.len() as f64;
        let y_scale = if y_var > 0.0 { y_var.sqrt() } else { 1.0 };
        let yt: Vec<f64> = ys.iter().map(|y| (y - y_mean) / y_scale).collect();

        let mut best: Option<(f64, f64, f64, Cholesky, Vec<f64>)> = None;
        // Scale the lengthscale grid with feature dimensionality: random
        // standardized points sit at distance ~sqrt(2·dim), so fixed
        // lengthscales degenerate to a diagonal kernel in high dimension.
        let dim_scale = (dim as f64).sqrt();
        for &ls in &[
            0.5f64,
            1.0,
            2.0,
            4.0,
            0.5 * dim_scale,
            1.0 * dim_scale,
            2.0 * dim_scale,
        ] {
            for &noise in &[1e-4f64, 1e-2] {
                let k = kernel_matrix(&xt, ls, noise);
                // Near-duplicate design points (common late in an MBO
                // run, when the search converges) make K numerically
                // semi-definite at this noise level; adaptive jitter
                // escalation recovers the grid point instead of
                // discarding it.
                let Ok((chol, _)) = Cholesky::factor_with_jitter(&k, 1e-10, 8) else {
                    continue;
                };
                let Ok(alpha) = chol.solve(&yt) else {
                    continue;
                };
                // log p(y) = -0.5 y'a - 0.5 log|K| - n/2 log(2pi)
                let fit_term: f64 = yt.iter().zip(&alpha).map(|(y, a)| y * a).sum();
                let lml = -0.5 * fit_term - 0.5 * chol.log_det();
                if best.as_ref().is_none_or(|b| lml > b.0) {
                    best = Some((lml, ls, noise, chol, alpha));
                }
            }
        }
        let (_, lengthscale, noise, chol, alpha) =
            best.ok_or_else(|| DseError::Surrogate("kernel matrix not factorable".to_string()))?;
        Ok(Gp {
            x_std,
            y_mean,
            y_scale,
            train_x: xt,
            alpha,
            chol,
            lengthscale,
            noise,
        })
    }

    /// Predicts `(mean, variance)` at one point (in the original feature
    /// space).
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training dimension. Use
    /// [`Gp::try_predict`] for a non-panicking variant.
    pub fn predict(&self, x: &[f64]) -> (f64, f64) {
        match self.try_predict(x) {
            Ok(p) => p,
            Err(e) => panic!("GP prediction failed: {e}"),
        }
    }

    /// Predicts `(mean, variance)` at one point, reporting dimension
    /// mismatches as errors instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`DseError::Surrogate`] when `x.len()` differs from the
    /// training dimension or contains non-finite values.
    pub fn try_predict(&self, x: &[f64]) -> Result<(f64, f64)> {
        self.check_query(x)?;
        let xq = self.x_std.transform_row(x);
        PREDICT_SCRATCH.with(|scratch| {
            let (k_star, v) = &mut *scratch.borrow_mut();
            k_star.clear();
            k_star.extend(self.train_x.iter().map(|xi| rbf(xi, &xq, self.lengthscale)));
            let mean_t: f64 = k_star.iter().zip(&self.alpha).map(|(k, a)| k * a).sum();
            // var = k(x,x) + noise - k*' K^-1 k*
            v.clear();
            v.extend_from_slice(k_star);
            self.chol
                .solve_in_place(v)
                .map_err(|e| DseError::Surrogate(format!("variance solve failed: {e}")))?;
            let quad: f64 = k_star.iter().zip(v.iter()).map(|(k, w)| k * w).sum();
            Ok(self.finish(mean_t, quad))
        })
    }

    /// Predicts `(mean, variance)` at many points at once. Numerically
    /// identical to mapping [`Gp::predict`] over `xs`, but builds one
    /// flat `k*` matrix and runs one batched triangular solve
    /// ([`Cholesky::solve_many`]) instead of allocating and solving per
    /// point — the shape the MBO acquisition loop needs, where every
    /// iteration scores dozens of candidates against each objective's
    /// surrogate.
    ///
    /// # Errors
    ///
    /// Returns [`DseError::Surrogate`] when any row's dimension differs
    /// from the training dimension or contains non-finite values.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Result<Vec<(f64, f64)>> {
        let n = self.train_x.len();
        for x in xs {
            self.check_query(x)?;
        }
        let mut kstars = vec![0.0; xs.len() * n];
        for (x, row) in xs.iter().zip(kstars.chunks_exact_mut(n)) {
            let xq = self.x_std.transform_row(x);
            for (xi, k) in self.train_x.iter().zip(row.iter_mut()) {
                *k = rbf(xi, &xq, self.lengthscale);
            }
        }
        let mut vs = kstars.clone();
        self.chol
            .solve_many(&mut vs)
            .map_err(|e| DseError::Surrogate(format!("variance solve failed: {e}")))?;
        Ok(kstars
            .chunks_exact(n)
            .zip(vs.chunks_exact(n))
            .map(|(k_star, v)| {
                let mean_t: f64 = k_star.iter().zip(&self.alpha).map(|(k, a)| k * a).sum();
                let quad: f64 = k_star.iter().zip(v).map(|(k, w)| k * w).sum();
                self.finish(mean_t, quad)
            })
            .collect())
    }

    fn check_query(&self, x: &[f64]) -> Result<()> {
        if x.len() != self.train_x[0].len() {
            return Err(DseError::Surrogate(format!(
                "query dim {} vs training dim {}",
                x.len(),
                self.train_x[0].len()
            )));
        }
        if x.iter().any(|v| !v.is_finite()) {
            return Err(DseError::Surrogate(format!("non-finite query point {x:?}")));
        }
        Ok(())
    }

    /// Destandardizes a `(mean, quad)` pair into output units.
    fn finish(&self, mean_t: f64, quad: f64) -> (f64, f64) {
        let var_t = (1.0 + self.noise - quad).max(0.0);
        (
            mean_t * self.y_scale + self.y_mean,
            var_t * self.y_scale * self.y_scale,
        )
    }

    /// The selected kernel lengthscale (standardized units).
    pub fn lengthscale(&self) -> f64 {
        self.lengthscale
    }
}

fn rbf(a: &[f64], b: &[f64], ls: f64) -> f64 {
    let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (-0.5 * d2 / (ls * ls)).exp()
}

fn kernel_matrix(xs: &[Vec<f64>], ls: f64, noise: f64) -> Mat {
    let n = xs.len();
    let mut k = Mat::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            let v = rbf(&xs[i], &xs[j], ls);
            k[(i, j)] = v;
            k[(j, i)] = v;
        }
        k[(i, i)] += noise;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolates_training_points() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * x[0] / 10.0).collect();
        let gp = Gp::fit(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            let (m, _) = gp.predict(x);
            assert!((m - y).abs() < 0.1, "at {x:?}: {m} vs {y}");
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let xs: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0]).collect();
        let gp = Gp::fit(&xs, &ys).unwrap();
        let (_, var_inside) = gp.predict(&[3.5]);
        let (_, var_outside) = gp.predict(&[30.0]);
        assert!(var_outside > var_inside);
    }

    #[test]
    fn constant_targets_are_handled() {
        let xs: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64]).collect();
        let ys = vec![2.0; 5];
        let gp = Gp::fit(&xs, &ys).unwrap();
        let (m, _) = gp.predict(&[2.0]);
        assert!((m - 2.0).abs() < 1e-6);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Gp::fit(&[], &[]).is_err());
        assert!(Gp::fit(&[vec![1.0]], &[1.0, 2.0]).is_err());
        assert!(Gp::fit(&[vec![1.0], vec![1.0, 2.0]], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn duplicated_design_points_still_fit() {
        // Identical rows make the noiseless kernel matrix singular;
        // jitter escalation must recover a usable surrogate.
        let xs = vec![vec![1.0, 2.0]; 12];
        let ys = vec![3.0; 12];
        let gp = Gp::fit(&xs, &ys).unwrap();
        let (m, v) = gp.predict(&[1.0, 2.0]);
        assert!((m - 3.0).abs() < 1e-3, "{m}");
        assert!(v.is_finite());
    }

    #[test]
    fn nonfinite_training_data_is_rejected() {
        assert!(Gp::fit(&[vec![f64::NAN]], &[1.0]).is_err());
        assert!(Gp::fit(&[vec![1.0]], &[f64::INFINITY]).is_err());
    }

    #[test]
    fn try_predict_reports_bad_queries() {
        let xs: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0]).collect();
        let gp = Gp::fit(&xs, &ys).unwrap();
        assert!(gp.try_predict(&[1.0, 2.0]).is_err());
        assert!(gp.try_predict(&[f64::NAN]).is_err());
        assert!(gp.try_predict(&[2.0]).is_ok());
    }

    #[test]
    fn batched_prediction_matches_single_point_exactly() {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..7 {
            for j in 0..4 {
                xs.push(vec![i as f64, j as f64 * 0.5]);
                ys.push((i as f64).sin() + j as f64);
            }
        }
        let gp = Gp::fit(&xs, &ys).unwrap();
        let queries: Vec<Vec<f64>> = vec![
            vec![0.0, 0.0],
            vec![3.3, 1.1],
            vec![-2.0, 7.0],
            vec![6.0, 1.5],
        ];
        let batch = gp.predict_batch(&queries).unwrap();
        assert_eq!(batch.len(), queries.len());
        for (q, &(bm, bv)) in queries.iter().zip(&batch) {
            let (m, v) = gp.predict(q);
            // Same arithmetic in the same order: bitwise equality.
            assert_eq!(bm, m, "mean at {q:?}");
            assert_eq!(bv, v, "variance at {q:?}");
        }
        assert!(gp.predict_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn batched_prediction_rejects_bad_rows() {
        let xs: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0]).collect();
        let gp = Gp::fit(&xs, &ys).unwrap();
        assert!(gp.predict_batch(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(gp.predict_batch(&[vec![f64::NAN]]).is_err());
    }

    #[test]
    fn multi_dimensional_regression() {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..6 {
            for j in 0..6 {
                xs.push(vec![i as f64, j as f64]);
                ys.push(i as f64 + 2.0 * j as f64);
            }
        }
        let gp = Gp::fit(&xs, &ys).unwrap();
        let (m, _) = gp.predict(&[2.5, 2.5]);
        assert!((m - 7.5).abs() < 0.5, "{m}");
    }
}
