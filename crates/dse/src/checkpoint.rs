//! Checkpoint / resume for MBO runs.
//!
//! A checkpoint captures the complete [`MboState`]: the configuration,
//! every evaluated point, the hypervolume trace, the phase counters and
//! — crucially — the exact RNG stream position (ChaCha8 seed plus word
//! position), so a resumed run replays the same random choices the
//! uninterrupted run would have made. Serialization is plain JSON with
//! deterministic key order, making checkpoints diffable and
//! byte-comparable.

use crate::mbo::{MboConfig, MboState};
use crate::space::Configuration;
use crate::{DseError, Result};
use clapped_imgproc::ConvMode;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde_json::{json, Value};

/// Version tag written into every checkpoint; bumped on schema changes.
/// Version 2 added `eval_digests` (content digests of the evaluated
/// configurations, for cache replay on resume); version-1 checkpoints
/// are still readable, their digests defaulting to zero.
const CHECKPOINT_VERSION: u64 = 2;

/// JSON conversion for candidate types carried through a checkpoint.
///
/// Implemented for `Vec<f64>` (generic numeric genomes) and for
/// [`Configuration`] (the paper's cross-layer design point).
pub trait CheckpointCodec: Sized {
    /// Encodes the candidate as a JSON value.
    fn to_checkpoint_json(&self) -> Value;
    /// Decodes a candidate from a JSON value.
    ///
    /// # Errors
    ///
    /// Returns [`DseError::Checkpoint`] when the value does not encode a
    /// valid candidate.
    fn from_checkpoint_json(value: &Value) -> Result<Self>;
}

fn bad(reason: impl Into<String>) -> DseError {
    DseError::Checkpoint { reason: reason.into() }
}

fn get<'a>(obj: &'a Value, key: &str) -> Result<&'a Value> {
    match obj.get(key) {
        Some(v) => Ok(v),
        None => Err(bad(format!("missing field `{key}`"))),
    }
}

fn as_f64(v: &Value, key: &str) -> Result<f64> {
    v.as_f64().ok_or_else(|| bad(format!("field `{key}` is not a number")))
}

fn as_u64(v: &Value, key: &str) -> Result<u64> {
    v.as_u64().ok_or_else(|| bad(format!("field `{key}` is not an unsigned integer")))
}

fn as_usize(v: &Value, key: &str) -> Result<usize> {
    Ok(as_u64(v, key)? as usize)
}

fn as_array<'a>(v: &'a Value, key: &str) -> Result<&'a [Value]> {
    v.as_array()
        .map(Vec::as_slice)
        .ok_or_else(|| bad(format!("field `{key}` is not an array")))
}

fn f64_vec(v: &Value, key: &str) -> Result<Vec<f64>> {
    as_array(v, key)?.iter().map(|x| as_f64(x, key)).collect()
}

impl CheckpointCodec for Vec<f64> {
    fn to_checkpoint_json(&self) -> Value {
        Value::from(self.clone())
    }

    fn from_checkpoint_json(value: &Value) -> Result<Vec<f64>> {
        f64_vec(value, "candidate")
    }
}

impl CheckpointCodec for Configuration {
    fn to_checkpoint_json(&self) -> Value {
        json!({
            "window": self.window,
            "stride": self.stride,
            "downsample": self.downsample,
            "mode": match self.mode {
                ConvMode::TwoD => "2d",
                ConvMode::Separable => "separable",
            },
            "scale": self.scale,
            "mul_indices": self.mul_indices.clone(),
        })
    }

    fn from_checkpoint_json(value: &Value) -> Result<Configuration> {
        let mode = match get(value, "mode")?.as_str() {
            Some("2d") => ConvMode::TwoD,
            Some("separable") => ConvMode::Separable,
            other => return Err(bad(format!("unknown conv mode {other:?}"))),
        };
        Ok(Configuration {
            window: as_usize(get(value, "window")?, "window")?,
            stride: as_usize(get(value, "stride")?, "stride")?,
            downsample: get(value, "downsample")?
                .as_bool()
                .ok_or_else(|| bad("field `downsample` is not a bool"))?,
            mode,
            scale: as_usize(get(value, "scale")?, "scale")?,
            mul_indices: as_array(get(value, "mul_indices")?, "mul_indices")?
                .iter()
                .map(|v| as_usize(v, "mul_indices"))
                .collect::<Result<_>>()?,
        })
    }
}

impl<C: CheckpointCodec + Clone> MboState<C> {
    /// Serializes the full state — config, evaluations, trace, phase
    /// counters and exact RNG position — to a JSON string with
    /// deterministic key ordering.
    pub fn to_checkpoint(&self) -> String {
        let word_pos = self.rng.get_word_pos();
        let state = json!({
            "version": CHECKPOINT_VERSION,
            "config": {
                "initial_samples": self.config.initial_samples,
                "iterations": self.config.iterations,
                "batch": self.config.batch,
                "candidates": self.config.candidates,
                "reference": self.config.reference.clone(),
                "kappa": self.config.kappa,
                "explore_fraction": self.config.explore_fraction,
                "seed": self.config.seed,
            },
            "rng": {
                "seed": self.rng.get_seed().iter().map(|&b| u64::from(b)).collect::<Vec<_>>(),
                "word_pos_hi": (word_pos >> 64) as u64,
                "word_pos_lo": word_pos as u64,
            },
            "evaluated": self
                .evaluated
                .iter()
                .map(|(c, o)| json!({
                    "candidate": c.to_checkpoint_json(),
                    "objectives": o.clone(),
                }))
                .collect::<Vec<_>>(),
            "eval_digests": self.eval_digests.clone(),
            "hv_trace": self
                .hv_trace
                .iter()
                .map(|&(n, h)| json!([n, h]))
                .collect::<Vec<_>>(),
            "initial_done": self.initial_done,
            "iterations_done": self.iterations_done,
        });
        serde_json::to_string_pretty(&state).unwrap_or_else(|_| String::from("{}"))
    }

    /// Restores a state previously produced by
    /// [`MboState::to_checkpoint`]. Stepping the restored state yields
    /// exactly the evaluations the uninterrupted run would have made.
    ///
    /// # Errors
    ///
    /// Returns [`DseError::Checkpoint`] on malformed JSON, an unknown
    /// schema version, or inconsistent fields.
    pub fn from_checkpoint(text: &str) -> Result<MboState<C>> {
        let root: Value =
            serde_json::from_str(text).map_err(|e| bad(format!("invalid JSON: {e}")))?;
        let version = as_u64(get(&root, "version")?, "version")?;
        if version == 0 || version > CHECKPOINT_VERSION {
            return Err(bad(format!(
                "unsupported checkpoint version {version} (expected 1..={CHECKPOINT_VERSION})"
            )));
        }

        let c = get(&root, "config")?;
        let config = MboConfig {
            initial_samples: as_usize(get(c, "initial_samples")?, "initial_samples")?,
            iterations: as_usize(get(c, "iterations")?, "iterations")?,
            batch: as_usize(get(c, "batch")?, "batch")?,
            candidates: as_usize(get(c, "candidates")?, "candidates")?,
            reference: f64_vec(get(c, "reference")?, "reference")?,
            kappa: as_f64(get(c, "kappa")?, "kappa")?,
            explore_fraction: as_f64(get(c, "explore_fraction")?, "explore_fraction")?,
            seed: as_u64(get(c, "seed")?, "seed")?,
        };

        let r = get(&root, "rng")?;
        let seed_words = as_array(get(r, "seed")?, "seed")?;
        if seed_words.len() != 32 {
            return Err(bad(format!("rng seed has {} bytes, expected 32", seed_words.len())));
        }
        let mut seed = [0u8; 32];
        for (dst, v) in seed.iter_mut().zip(seed_words) {
            let byte = as_u64(v, "seed")?;
            if byte > 255 {
                return Err(bad(format!("rng seed byte {byte} out of range")));
            }
            *dst = byte as u8;
        }
        let hi = as_u64(get(r, "word_pos_hi")?, "word_pos_hi")?;
        let lo = as_u64(get(r, "word_pos_lo")?, "word_pos_lo")?;
        let mut rng = ChaCha8Rng::from_seed(seed);
        rng.set_word_pos((u128::from(hi) << 64) | u128::from(lo));

        let mut evaluated = Vec::new();
        for entry in as_array(get(&root, "evaluated")?, "evaluated")? {
            let candidate = C::from_checkpoint_json(get(entry, "candidate")?)?;
            let objectives = f64_vec(get(entry, "objectives")?, "objectives")?;
            if objectives.len() != config.reference.len() {
                return Err(bad(format!(
                    "objective vector of dim {} vs reference dim {}",
                    objectives.len(),
                    config.reference.len()
                )));
            }
            evaluated.push((candidate, objectives));
        }

        // Version 1 predates digest tracking: default to zero ("no
        // digest recorded"), which downstream treats as un-replayable.
        let eval_digests: Vec<u64> = if version >= 2 {
            let digests = as_array(get(&root, "eval_digests")?, "eval_digests")?
                .iter()
                .map(|v| as_u64(v, "eval_digests"))
                .collect::<Result<Vec<u64>>>()?;
            if digests.len() != evaluated.len() {
                return Err(bad(format!(
                    "{} eval digests for {} evaluations",
                    digests.len(),
                    evaluated.len()
                )));
            }
            digests
        } else {
            vec![0; evaluated.len()]
        };

        let mut hv_trace = Vec::new();
        for entry in as_array(get(&root, "hv_trace")?, "hv_trace")? {
            let pair = as_array(entry, "hv_trace")?;
            if pair.len() != 2 {
                return Err(bad("hv_trace entries must be [count, hv] pairs"));
            }
            hv_trace.push((as_usize(&pair[0], "hv_trace")?, as_f64(&pair[1], "hv_trace")?));
        }

        let initial_done = get(&root, "initial_done")?
            .as_bool()
            .ok_or_else(|| bad("field `initial_done` is not a bool"))?;
        let iterations_done = as_usize(get(&root, "iterations_done")?, "iterations_done")?;
        if iterations_done > config.iterations {
            return Err(bad(format!(
                "iterations_done {iterations_done} exceeds configured {}",
                config.iterations
            )));
        }

        Ok(MboState {
            config,
            rng,
            evaluated,
            eval_digests,
            hv_trace,
            initial_done,
            iterations_done,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mbo::MboState;
    use crate::DesignSpace;
    use rand::Rng;

    fn toy_objective(c: &[f64]) -> Vec<f64> {
        let x = (c[0] + c[1]) / 2.0;
        vec![x, (1.0 - x) * (1.0 - x) + 0.05 * (c[0] - c[1]).abs()]
    }

    fn toy_sample(rng: &mut ChaCha8Rng) -> Vec<f64> {
        vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]
    }

    fn config() -> MboConfig {
        MboConfig {
            initial_samples: 6,
            iterations: 4,
            batch: 3,
            candidates: 12,
            reference: vec![1.5, 1.5],
            kappa: 1.0,
            explore_fraction: 0.1,
            seed: 17,
        }
    }

    fn run_to_completion(mut state: MboState<Vec<f64>>) -> crate::SearchResult<Vec<f64>> {
        let mut sample = toy_sample;
        let encode = |c: &Vec<f64>| c.clone();
        let mut evaluate = |c: &Vec<f64>| Ok(toy_objective(c));
        while !state.is_complete() {
            state.step(&mut sample, &encode, &mut evaluate).unwrap();
        }
        state.into_result()
    }

    #[test]
    fn checkpoint_roundtrip_is_byte_identical() {
        let mut state = MboState::<Vec<f64>>::new(&config()).unwrap();
        let mut sample = toy_sample;
        let encode = |c: &Vec<f64>| c.clone();
        let mut evaluate = |c: &Vec<f64>| Ok(toy_objective(c));
        state.step(&mut sample, &encode, &mut evaluate).unwrap();
        state.step(&mut sample, &encode, &mut evaluate).unwrap();
        let text = state.to_checkpoint();
        let restored = MboState::<Vec<f64>>::from_checkpoint(&text).unwrap();
        assert_eq!(restored.to_checkpoint(), text);
    }

    #[test]
    fn resume_reproduces_uninterrupted_run() {
        let cfg = config();
        let uninterrupted = run_to_completion(MboState::new(&cfg).unwrap());

        let mut state = MboState::<Vec<f64>>::new(&cfg).unwrap();
        let mut sample = toy_sample;
        let encode = |c: &Vec<f64>| c.clone();
        let mut evaluate = |c: &Vec<f64>| Ok(toy_objective(c));
        // Initial phase + 2 of 4 iterations, then "crash".
        for _ in 0..3 {
            state.step(&mut sample, &encode, &mut evaluate).unwrap();
        }
        let text = state.to_checkpoint();
        drop(state);
        let resumed = run_to_completion(MboState::from_checkpoint(&text).unwrap());

        assert_eq!(resumed.hv_trace, uninterrupted.hv_trace);
        assert_eq!(resumed.evaluated, uninterrupted.evaluated);
        assert_eq!(resumed.pareto_indices(), uninterrupted.pareto_indices());
    }

    #[test]
    fn configuration_codec_roundtrips() {
        use rand::SeedableRng;
        let space = DesignSpace::paper_default(18);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for _ in 0..20 {
            let c = space.sample(&mut rng);
            let v = c.to_checkpoint_json();
            let back = Configuration::from_checkpoint_json(&v).unwrap();
            assert_eq!(back, c);
        }
    }

    #[test]
    fn malformed_checkpoints_are_rejected() {
        assert!(MboState::<Vec<f64>>::from_checkpoint("not json").is_err());
        assert!(MboState::<Vec<f64>>::from_checkpoint("{}").is_err());
        let wrong_version = r#"{"version": 99}"#;
        assert!(matches!(
            MboState::<Vec<f64>>::from_checkpoint(wrong_version),
            Err(DseError::Checkpoint { .. })
        ));
    }
}
