//! Multi-objective Bayesian optimization (the paper's DSE method).

use crate::gp::Gp;
use crate::hv::hypervolume;
use crate::pareto::pareto_front;
use crate::{DseError, Result};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// MBO parameters. The paper's run evaluates 10 new samples per
/// iteration, selected from 50 acquisition candidates.
#[derive(Debug, Clone, PartialEq)]
pub struct MboConfig {
    /// Random design points evaluated before the first surrogate fit.
    pub initial_samples: usize,
    /// Number of optimization iterations.
    pub iterations: usize,
    /// True evaluations per iteration.
    pub batch: usize,
    /// Random candidates scored by the acquisition function per
    /// iteration.
    pub candidates: usize,
    /// Hypervolume reference point (must be no better than any
    /// reachable objective vector).
    pub reference: Vec<f64>,
    /// Optimism factor: the acquisition scores candidates at
    /// `mean − kappa·std` (lower confidence bound for minimization).
    /// Zero disables exploration.
    pub kappa: f64,
    /// Fraction of each batch filled with uniformly random samples
    /// instead of acquisition picks (ε-greedy exploration; guards
    /// against surrogate lock-in). `0.0` disables.
    pub explore_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MboConfig {
    fn default() -> Self {
        MboConfig {
            initial_samples: 20,
            iterations: 10,
            batch: 10,
            candidates: 50,
            reference: vec![1.0, 1.0],
            kappa: 1.0,
            explore_fraction: 0.1,
            seed: 0,
        }
    }
}

/// The outcome of a search run (MBO or a baseline).
#[derive(Debug, Clone)]
pub struct SearchResult<C> {
    /// Every evaluated design point with its objective vector, in
    /// evaluation order.
    pub evaluated: Vec<(C, Vec<f64>)>,
    /// Hypervolume of the evaluated set after every batch:
    /// `(evaluation count, hypervolume)`.
    pub hv_trace: Vec<(usize, f64)>,
}

impl<C> SearchResult<C> {
    /// Indices (into `evaluated`) of the Pareto-optimal points.
    pub fn pareto_indices(&self) -> Vec<usize> {
        let objs: Vec<Vec<f64>> = self.evaluated.iter().map(|(_, o)| o.clone()).collect();
        pareto_front(&objs)
    }

    /// Final hypervolume.
    pub fn final_hypervolume(&self) -> f64 {
        self.hv_trace.last().map(|&(_, h)| h).unwrap_or(0.0)
    }
}

/// Runs multi-objective Bayesian optimization.
///
/// Each iteration fits one GP surrogate per objective on the evaluated
/// set, scores `candidates` random configurations by the **exclusive
/// hypervolume contribution** of their predicted objective vectors, and
/// truly evaluates the `batch` top-ranked ones.
///
/// # Errors
///
/// Returns [`DseError::BadObjectives`] when objective dimensions are
/// inconsistent with the reference point, and propagates surrogate
/// failures.
pub fn mbo<C: Clone>(
    config: &MboConfig,
    mut sample: impl FnMut(&mut ChaCha8Rng) -> C,
    encode: impl Fn(&C) -> Vec<f64>,
    mut objective: impl FnMut(&C) -> Vec<f64>,
) -> Result<SearchResult<C>> {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let d = config.reference.len();
    let mut evaluated: Vec<(C, Vec<f64>)> = Vec::new();
    let mut hv_trace = Vec::new();

    let mut eval = |c: C, evaluated: &mut Vec<(C, Vec<f64>)>| -> Result<()> {
        let o = objective(&c);
        if o.len() != d {
            return Err(DseError::BadObjectives {
                reason: format!("objective dim {} vs reference dim {d}", o.len()),
            });
        }
        evaluated.push((c, o));
        Ok(())
    };

    for _ in 0..config.initial_samples {
        let c = sample(&mut rng);
        eval(c, &mut evaluated)?;
    }
    let objs_of = |evaluated: &[(C, Vec<f64>)]| -> Vec<Vec<f64>> {
        evaluated.iter().map(|(_, o)| o.clone()).collect()
    };
    hv_trace.push((
        evaluated.len(),
        hypervolume(&objs_of(&evaluated), &config.reference),
    ));

    for _ in 0..config.iterations {
        // Surrogate: one GP per objective.
        let xs: Vec<Vec<f64>> = evaluated.iter().map(|(c, _)| encode(c)).collect();
        let mut gps = Vec::with_capacity(d);
        for k in 0..d {
            let ys: Vec<f64> = evaluated.iter().map(|(_, o)| o[k]).collect();
            gps.push(Gp::fit(&xs, &ys)?);
        }
        // Acquisition: optimistic (LCB) predictions, ranked by exclusive
        // HV contribution over the current true front. Selection is
        // sequential-greedy: each pick's predicted point joins the
        // working front so the batch spreads across the front instead of
        // clustering on one spot.
        let mut working = objs_of(&evaluated);
        let mut candidates: Vec<(Vec<f64>, C)> = (0..config.candidates)
            .map(|_| {
                let c = sample(&mut rng);
                let x = encode(&c);
                let pred: Vec<f64> = gps
                    .iter()
                    .map(|g| {
                        let (mean, var) = g.predict(&x);
                        mean - config.kappa * var.max(0.0).sqrt()
                    })
                    .collect();
                (pred, c)
            })
            .collect();
        let n_random = ((config.batch as f64) * config.explore_fraction).round() as usize;
        let n_guided = config.batch.saturating_sub(n_random).min(candidates.len());
        for _ in 0..n_guided {
            let base_hv = hypervolume(&working, &config.reference);
            let (best_idx, _) = candidates
                .iter()
                .enumerate()
                .map(|(i, (pred, _))| {
                    let mut with = working.clone();
                    with.push(pred.clone());
                    (i, hypervolume(&with, &config.reference) - base_hv)
                })
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite gains"))
                .expect("non-empty candidate set");
            let (pred, c) = candidates.swap_remove(best_idx);
            working.push(pred);
            eval(c, &mut evaluated)?;
        }
        for _ in 0..config.batch - n_guided {
            let c = sample(&mut rng);
            eval(c, &mut evaluated)?;
        }
        hv_trace.push((
            evaluated.len(),
            hypervolume(&objs_of(&evaluated), &config.reference),
        ));
    }
    Ok(SearchResult {
        evaluated,
        hv_trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// A toy bi-objective problem: minimize (x, 1-x) over x in [0,1]
    /// encoded from two genes; the front is the diagonal.
    fn toy_objective(c: &Vec<f64>) -> Vec<f64> {
        let x = (c[0] + c[1]) / 2.0;
        vec![x, (1.0 - x) * (1.0 - x) + 0.05 * (c[0] - c[1]).abs()]
    }

    fn toy_sample(rng: &mut ChaCha8Rng) -> Vec<f64> {
        vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]
    }

    #[test]
    fn mbo_improves_hypervolume() {
        let config = MboConfig {
            initial_samples: 10,
            iterations: 5,
            batch: 5,
            candidates: 30,
            reference: vec![1.5, 1.5],
            kappa: 1.0,
            explore_fraction: 0.1,
            seed: 3,
        };
        let result = mbo(&config, toy_sample, |c| c.clone(), toy_objective).unwrap();
        assert_eq!(result.evaluated.len(), 10 + 5 * 5);
        assert_eq!(result.hv_trace.len(), 6);
        let first = result.hv_trace[0].1;
        let last = result.final_hypervolume();
        assert!(last >= first, "hv must not decrease: {first} -> {last}");
        assert!(!result.pareto_indices().is_empty());
    }

    #[test]
    fn hv_trace_is_monotone() {
        let config = MboConfig {
            initial_samples: 8,
            iterations: 4,
            batch: 4,
            candidates: 20,
            reference: vec![1.5, 1.5],
            kappa: 1.0,
            explore_fraction: 0.1,
            seed: 11,
        };
        let result = mbo(&config, toy_sample, |c| c.clone(), toy_objective).unwrap();
        for w in result.hv_trace.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-12);
        }
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let config = MboConfig {
            reference: vec![1.0, 1.0, 1.0],
            ..MboConfig::default()
        };
        let r = mbo(&config, toy_sample, |c| c.clone(), toy_objective);
        assert!(matches!(r, Err(DseError::BadObjectives { .. })));
    }

    #[test]
    fn deterministic_under_seed() {
        let config = MboConfig {
            initial_samples: 6,
            iterations: 2,
            batch: 3,
            candidates: 10,
            reference: vec![1.5, 1.5],
            kappa: 1.0,
            explore_fraction: 0.1,
            seed: 42,
        };
        let a = mbo(&config, toy_sample, |c| c.clone(), toy_objective).unwrap();
        let b = mbo(&config, toy_sample, |c| c.clone(), toy_objective).unwrap();
        assert_eq!(a.hv_trace, b.hv_trace);
    }
}
