//! Multi-objective Bayesian optimization (the paper's DSE method).
//!
//! The optimizer is an explicit-state machine, [`MboState`]: one
//! [`MboState::step`] call performs either the initial random sampling
//! phase or one acquisition iteration. [`mbo`] is the convenience driver
//! that steps to completion; the stepping form exists so runs can be
//! checkpointed between iterations (`MboState::to_checkpoint`) and
//! survive candidate-evaluation failures
//! ([`crate::mbo_resilient`]).

use crate::gp::Gp;
use crate::hv::hypervolume;
use crate::pareto::pareto_front;
use crate::{DseError, Result};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// MBO parameters. The paper's run evaluates 10 new samples per
/// iteration, selected from 50 acquisition candidates.
#[derive(Debug, Clone, PartialEq)]
pub struct MboConfig {
    /// Random design points evaluated before the first surrogate fit.
    pub initial_samples: usize,
    /// Number of optimization iterations.
    pub iterations: usize,
    /// True evaluations per iteration.
    pub batch: usize,
    /// Random candidates scored by the acquisition function per
    /// iteration.
    pub candidates: usize,
    /// Hypervolume reference point (must be no better than any
    /// reachable objective vector).
    pub reference: Vec<f64>,
    /// Optimism factor: the acquisition scores candidates at
    /// `mean − kappa·std` (lower confidence bound for minimization).
    /// Zero disables exploration.
    pub kappa: f64,
    /// Fraction of each batch filled with uniformly random samples
    /// instead of acquisition picks (ε-greedy exploration; guards
    /// against surrogate lock-in). `0.0` disables.
    pub explore_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MboConfig {
    fn default() -> Self {
        MboConfig {
            initial_samples: 20,
            iterations: 10,
            batch: 10,
            candidates: 50,
            reference: vec![1.0, 1.0],
            kappa: 1.0,
            explore_fraction: 0.1,
            seed: 0,
        }
    }
}

/// The outcome of a search run (MBO or a baseline).
#[derive(Debug, Clone)]
pub struct SearchResult<C> {
    /// Every evaluated design point with its objective vector, in
    /// evaluation order.
    pub evaluated: Vec<(C, Vec<f64>)>,
    /// Hypervolume of the evaluated set after every batch:
    /// `(evaluation count, hypervolume)`.
    pub hv_trace: Vec<(usize, f64)>,
}

impl<C> SearchResult<C> {
    /// Indices (into `evaluated`) of the Pareto-optimal points.
    pub fn pareto_indices(&self) -> Vec<usize> {
        let objs: Vec<&[f64]> = self.evaluated.iter().map(|(_, o)| o.as_slice()).collect();
        pareto_front(&objs)
    }

    /// Final hypervolume.
    pub fn final_hypervolume(&self) -> f64 {
        self.hv_trace.last().map(|&(_, h)| h).unwrap_or(0.0)
    }
}

/// Explicit, resumable state of an MBO run.
///
/// Drive it with [`MboState::step`] until [`MboState::is_complete`];
/// between steps the state can be serialized with
/// `MboState::to_checkpoint` and later restored bit-exactly (including
/// the RNG stream position) with `MboState::from_checkpoint`.
#[derive(Debug, Clone)]
pub struct MboState<C> {
    pub(crate) config: MboConfig,
    pub(crate) rng: ChaCha8Rng,
    pub(crate) evaluated: Vec<(C, Vec<f64>)>,
    /// Content digest of each recorded evaluation (parallel to
    /// `evaluated`; `0` when the evaluator did not supply one). Persisted
    /// in checkpoints so a resumed run can replay cache hits.
    pub(crate) eval_digests: Vec<u64>,
    pub(crate) hv_trace: Vec<(usize, f64)>,
    pub(crate) initial_done: bool,
    pub(crate) iterations_done: usize,
}

/// Per-candidate outcome of a batched evaluation, in candidate order.
///
/// The contract mirrors the serial `evaluate` closure of
/// [`MboState::step`]: a [`BatchOutcome::Value`] records the candidate,
/// a [`BatchOutcome::Skip`] quarantines it (its batch slot is dropped),
/// and a [`BatchOutcome::Fail`] aborts the step at that slot — earlier
/// outcomes in the batch are still recorded, later ones are discarded,
/// exactly as if a serial evaluator had errored mid-batch.
#[derive(Debug)]
pub enum BatchOutcome {
    /// A successful evaluation.
    Value {
        /// The objective vector (must match the reference dimension).
        objectives: Vec<f64>,
        /// Stable content digest of the evaluated configuration, or `0`
        /// when the evaluator does not track digests.
        digest: u64,
    },
    /// The candidate was quarantined; its slot is skipped.
    Skip {
        /// Diagnostic description of why the candidate was rejected.
        reason: String,
    },
    /// Hard failure: the step aborts here.
    Fail(DseError),
}

impl<C: Clone> MboState<C> {
    /// Creates the initial state for `config`.
    ///
    /// # Errors
    ///
    /// Returns [`DseError::BadObjectives`] when the hypervolume
    /// reference point is empty or contains non-finite coordinates.
    pub fn new(config: &MboConfig) -> Result<MboState<C>> {
        if config.reference.is_empty() {
            return Err(DseError::BadObjectives {
                reason: "empty hypervolume reference point".to_string(),
            });
        }
        if config.reference.iter().any(|r| !r.is_finite()) {
            return Err(DseError::BadObjectives {
                reason: format!("non-finite reference point {:?}", config.reference),
            });
        }
        Ok(MboState {
            config: config.clone(),
            rng: ChaCha8Rng::seed_from_u64(config.seed),
            evaluated: Vec::new(),
            eval_digests: Vec::new(),
            hv_trace: Vec::new(),
            initial_done: false,
            iterations_done: 0,
        })
    }

    /// The configuration this run was started with.
    pub fn config(&self) -> &MboConfig {
        &self.config
    }

    /// Evaluated points so far, in evaluation order.
    pub fn evaluated(&self) -> &[(C, Vec<f64>)] {
        &self.evaluated
    }

    /// Content digest of each evaluation in [`MboState::evaluated`]
    /// order (`0` for evaluators that do not track digests). Persisted
    /// in checkpoints, so a resumed run knows which results a warm
    /// cache can replay.
    pub fn eval_digests(&self) -> &[u64] {
        &self.eval_digests
    }

    /// Iterations completed so far (excludes the initial phase).
    pub fn iterations_done(&self) -> usize {
        self.iterations_done
    }

    /// True once the initial phase and all iterations have run.
    pub fn is_complete(&self) -> bool {
        self.initial_done && self.iterations_done >= self.config.iterations
    }

    /// Evaluations recorded so far (skipped/quarantined slots excluded).
    pub fn evaluations_done(&self) -> usize {
        self.evaluated.len()
    }

    /// Total evaluations an uninterrupted run will attempt:
    /// `initial_samples + iterations × batch`. With `evaluations_done`
    /// this gives a long-running job server its progress fraction.
    pub fn planned_evaluations(&self) -> usize {
        self.config.initial_samples + self.config.iterations * self.config.batch
    }

    /// Hypervolume of the evaluated set after the most recently
    /// completed phase (`0.0` before the initial phase finishes).
    pub fn current_hypervolume(&self) -> f64 {
        self.hv_trace.last().map(|&(_, h)| h).unwrap_or(0.0)
    }

    /// Indices (into [`MboState::evaluated`]) of the currently
    /// Pareto-optimal points — the non-consuming mid-run counterpart of
    /// [`SearchResult::pareto_indices`], so a serving layer can report
    /// or checkpoint a partial front without ending the run.
    pub fn pareto_indices(&self) -> Vec<usize> {
        let objs: Vec<&[f64]> = self.evaluated.iter().map(|(_, o)| o.as_slice()).collect();
        pareto_front(&objs)
    }

    /// Consumes the state into a [`SearchResult`].
    pub fn into_result(self) -> SearchResult<C> {
        SearchResult {
            evaluated: self.evaluated,
            hv_trace: self.hv_trace,
        }
    }

    /// Appends the hypervolume of the current evaluated set to the
    /// trace. Called after each completed phase; also used by the
    /// resilient driver to seal a partially completed batch.
    pub(crate) fn push_hv(&mut self) {
        let objs: Vec<&[f64]> = self.evaluated.iter().map(|(_, o)| o.as_slice()).collect();
        let hv = hypervolume(&objs, &self.config.reference);
        self.hv_trace.push((self.evaluated.len(), hv));
        clapped_obs::gauge_set("dse.mbo.hypervolume", hv);
        clapped_obs::emit_point(
            "dse.mbo.hv",
            &[("evals", self.evaluated.len() as f64), ("hv", hv)],
        );
    }

    /// Records a batch of outcomes against the candidates they evaluate.
    ///
    /// Outcomes are consumed in candidate order: values are recorded,
    /// skips drop their slot, and the first [`BatchOutcome::Fail`]
    /// aborts with its error — everything recorded before it stays, which
    /// reproduces a serial evaluator erroring mid-batch. The outcome
    /// list may be truncated at a trailing `Fail` (a serial adapter
    /// stops evaluating at the first hard failure); any other length
    /// mismatch is a contract violation.
    fn record_batch(&mut self, candidates: Vec<C>, outcomes: Vec<BatchOutcome>) -> Result<()> {
        if outcomes.len() > candidates.len() {
            return Err(DseError::BadObjectives {
                reason: format!(
                    "batch evaluator returned {} outcomes for {} candidates",
                    outcomes.len(),
                    candidates.len()
                ),
            });
        }
        let n_outcomes = outcomes.len();
        let n_candidates = candidates.len();
        for (c, outcome) in candidates.into_iter().zip(outcomes) {
            match outcome {
                BatchOutcome::Value { objectives, digest } => {
                    if objectives.len() != self.config.reference.len() {
                        return Err(DseError::BadObjectives {
                            reason: format!(
                                "objective dim {} vs reference dim {}",
                                objectives.len(),
                                self.config.reference.len()
                            ),
                        });
                    }
                    self.evaluated.push((c, objectives));
                    self.eval_digests.push(digest);
                }
                BatchOutcome::Skip { .. } => {}
                BatchOutcome::Fail(e) => return Err(e),
            }
        }
        if n_outcomes < n_candidates {
            return Err(DseError::BadObjectives {
                reason: format!(
                    "batch evaluator returned {n_outcomes} outcomes for {n_candidates} candidates"
                ),
            });
        }
        Ok(())
    }

    /// Advances the run by one phase: the initial random-sampling phase
    /// on the first call, one acquisition iteration afterwards. No-op
    /// when [`MboState::is_complete`].
    ///
    /// `evaluate` returns the objective vector for a candidate; a
    /// [`DseError::Evaluation`] error quarantines that candidate (its
    /// batch slot is skipped) while any other error aborts the step.
    ///
    /// This is the serial adapter over [`MboState::step_batched`]:
    /// candidates are evaluated one at a time, stopping at the first
    /// hard failure, which yields identical recorded state to the
    /// historical per-candidate loop.
    ///
    /// # Errors
    ///
    /// Returns [`DseError::BadObjectives`] on objective-dimension
    /// mismatches and propagates surrogate and evaluator failures.
    pub fn step(
        &mut self,
        sample: &mut impl FnMut(&mut ChaCha8Rng) -> C,
        encode: &impl Fn(&C) -> Vec<f64>,
        evaluate: &mut impl FnMut(&C) -> Result<Vec<f64>>,
    ) -> Result<()> {
        let mut batch_evaluate = |cs: &[C]| -> Vec<BatchOutcome> {
            let mut out = Vec::with_capacity(cs.len());
            for c in cs {
                match evaluate(c) {
                    Ok(objectives) => out.push(BatchOutcome::Value { objectives, digest: 0 }),
                    Err(DseError::Evaluation { reason }) => {
                        out.push(BatchOutcome::Skip { reason });
                    }
                    Err(e) => {
                        // Hard failure: stop evaluating the rest of the
                        // batch, like the historical serial loop did.
                        out.push(BatchOutcome::Fail(e));
                        break;
                    }
                }
            }
            out
        };
        self.step_batched(sample, encode, &mut batch_evaluate)
    }

    /// [`MboState::step`] with batched candidate evaluation.
    ///
    /// All candidates of the phase are sampled *before* `evaluate_batch`
    /// runs; since candidate evaluation never touches the RNG, the RNG
    /// stream — and therefore the whole search trajectory — is
    /// bit-identical to the serial form. The evaluator is handed the
    /// full batch at once and may compute the outcomes in parallel (for
    /// example with `clapped-exec`'s `Engine`), as long as the returned
    /// outcomes are in candidate order.
    ///
    /// # Errors
    ///
    /// See [`MboState::step`]; additionally rejects outcome lists whose
    /// length does not match the candidate batch.
    pub fn step_batched(
        &mut self,
        sample: &mut impl FnMut(&mut ChaCha8Rng) -> C,
        encode: &impl Fn(&C) -> Vec<f64>,
        evaluate_batch: &mut impl FnMut(&[C]) -> Vec<BatchOutcome>,
    ) -> Result<()> {
        let d = self.config.reference.len();
        if !self.initial_done {
            let batch: Vec<C> = (0..self.config.initial_samples)
                .map(|_| sample(&mut self.rng))
                .collect();
            let outcomes = {
                let _span = clapped_obs::span("dse.mbo.evaluate");
                evaluate_batch(&batch)
            };
            self.record_batch(batch, outcomes)?;
            self.initial_done = true;
            self.push_hv();
            return Ok(());
        }
        if self.iterations_done >= self.config.iterations {
            return Ok(());
        }

        // Surrogate: one GP per objective.
        let xs: Vec<Vec<f64>> = self.evaluated.iter().map(|(c, _)| encode(c)).collect();
        let mut gps = Vec::with_capacity(d);
        {
            let _span = clapped_obs::span("dse.mbo.gp_fit");
            for k in 0..d {
                let ys: Vec<f64> = self.evaluated.iter().map(|(_, o)| o[k]).collect();
                gps.push(Gp::fit(&xs, &ys)?);
            }
        }
        let acq_span = clapped_obs::span("dse.mbo.acquisition");
        // Acquisition: optimistic (LCB) predictions, ranked by exclusive
        // HV contribution over the current true front. Selection is
        // sequential-greedy: each pick's predicted point joins the
        // working front so the batch spreads across the front instead of
        // clustering on one spot.
        let mut working: Vec<Vec<f64>> =
            self.evaluated.iter().map(|(_, o)| o.clone()).collect();
        // Sample every candidate up front (keeping the RNG stream
        // identical to per-candidate prediction, which never touched it),
        // then batch-predict all of them per objective: one flat k*
        // matrix and one batched triangular solve per GP instead of
        // candidates × objectives allocating solves.
        let sampled: Vec<C> = (0..self.config.candidates)
            .map(|_| sample(&mut self.rng))
            .collect();
        clapped_obs::count("dse.mbo.candidates", sampled.len() as u64);
        let encoded: Vec<Vec<f64>> = sampled.iter().map(encode).collect();
        let mut preds: Vec<Vec<f64>> =
            sampled.iter().map(|_| Vec::with_capacity(d)).collect();
        for g in &gps {
            for (pred, (mean, var)) in preds.iter_mut().zip(g.predict_batch(&encoded)?) {
                pred.push(mean - self.config.kappa * var.max(0.0).sqrt());
            }
        }
        let mut candidates: Vec<(Vec<f64>, C)> = preds.into_iter().zip(sampled).collect();
        let n_random =
            ((self.config.batch as f64) * self.config.explore_fraction).round() as usize;
        let n_guided = self.config.batch.saturating_sub(n_random).min(candidates.len());
        let mut picked: Vec<C> = Vec::with_capacity(self.config.batch);
        for _ in 0..n_guided {
            let base_hv = hypervolume(&working, &self.config.reference);
            let best = candidates
                .iter()
                .enumerate()
                .map(|(i, (pred, _))| {
                    // Score by push/pop on the shared working front
                    // instead of cloning the whole matrix per candidate.
                    working.push(pred.clone());
                    let gain = hypervolume(&working, &self.config.reference) - base_hv;
                    working.pop();
                    (i, gain)
                })
                // total_cmp: predictions can in principle go non-finite;
                // NaN gains then sort low instead of panicking.
                .max_by(|a, b| a.1.total_cmp(&b.1));
            let Some((best_idx, _)) = best else { break };
            let (pred, c) = candidates.swap_remove(best_idx);
            working.push(pred);
            picked.push(c);
        }
        for _ in 0..self.config.batch - n_guided {
            picked.push(sample(&mut self.rng));
        }
        drop(acq_span);
        let outcomes = {
            let _span = clapped_obs::span("dse.mbo.evaluate");
            evaluate_batch(&picked)
        };
        self.record_batch(picked, outcomes)?;
        self.iterations_done += 1;
        self.push_hv();
        Ok(())
    }
}

/// Runs multi-objective Bayesian optimization to completion.
///
/// Each iteration fits one GP surrogate per objective on the evaluated
/// set, scores `candidates` random configurations by the **exclusive
/// hypervolume contribution** of their predicted objective vectors, and
/// truly evaluates the `batch` top-ranked ones.
///
/// This driver assumes an infallible objective; see
/// [`crate::mbo_resilient`] for the failure-isolated variant and
/// [`MboState`] for manual stepping with checkpoints.
///
/// # Errors
///
/// Returns [`DseError::BadObjectives`] when objective dimensions are
/// inconsistent with the reference point, and propagates surrogate
/// failures.
pub fn mbo<C: Clone>(
    config: &MboConfig,
    mut sample: impl FnMut(&mut ChaCha8Rng) -> C,
    encode: impl Fn(&C) -> Vec<f64>,
    mut objective: impl FnMut(&C) -> Vec<f64>,
) -> Result<SearchResult<C>> {
    let mut state = MboState::new(config)?;
    let mut evaluate = |c: &C| -> Result<Vec<f64>> { Ok(objective(c)) };
    while !state.is_complete() {
        state.step(&mut sample, &encode, &mut evaluate)?;
    }
    Ok(state.into_result())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// A toy bi-objective problem: minimize (x, 1-x) over x in [0,1]
    /// encoded from two genes; the front is the diagonal.
    // The concrete &Vec signature is required: the fn is passed directly
    // as an `FnMut(&Vec<f64>)` objective.
    #[allow(clippy::ptr_arg)]
    fn toy_objective(c: &Vec<f64>) -> Vec<f64> {
        let x = (c[0] + c[1]) / 2.0;
        vec![x, (1.0 - x) * (1.0 - x) + 0.05 * (c[0] - c[1]).abs()]
    }

    fn toy_sample(rng: &mut ChaCha8Rng) -> Vec<f64> {
        vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]
    }

    #[test]
    fn mbo_improves_hypervolume() {
        let config = MboConfig {
            initial_samples: 10,
            iterations: 5,
            batch: 5,
            candidates: 30,
            reference: vec![1.5, 1.5],
            kappa: 1.0,
            explore_fraction: 0.1,
            seed: 3,
        };
        let result = mbo(&config, toy_sample, |c| c.clone(), toy_objective).unwrap();
        assert_eq!(result.evaluated.len(), 10 + 5 * 5);
        assert_eq!(result.hv_trace.len(), 6);
        let first = result.hv_trace[0].1;
        let last = result.final_hypervolume();
        assert!(last >= first, "hv must not decrease: {first} -> {last}");
        assert!(!result.pareto_indices().is_empty());
    }

    #[test]
    fn hv_trace_is_monotone() {
        let config = MboConfig {
            initial_samples: 8,
            iterations: 4,
            batch: 4,
            candidates: 20,
            reference: vec![1.5, 1.5],
            kappa: 1.0,
            explore_fraction: 0.1,
            seed: 11,
        };
        let result = mbo(&config, toy_sample, |c| c.clone(), toy_objective).unwrap();
        for w in result.hv_trace.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-12);
        }
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let config = MboConfig {
            reference: vec![1.0, 1.0, 1.0],
            ..MboConfig::default()
        };
        let r = mbo(&config, toy_sample, |c| c.clone(), toy_objective);
        assert!(matches!(r, Err(DseError::BadObjectives { .. })));
    }

    #[test]
    fn deterministic_under_seed() {
        let config = MboConfig {
            initial_samples: 6,
            iterations: 2,
            batch: 3,
            candidates: 10,
            reference: vec![1.5, 1.5],
            kappa: 1.0,
            explore_fraction: 0.1,
            seed: 42,
        };
        let a = mbo(&config, toy_sample, |c| c.clone(), toy_objective).unwrap();
        let b = mbo(&config, toy_sample, |c| c.clone(), toy_objective).unwrap();
        assert_eq!(a.hv_trace, b.hv_trace);
    }

    #[test]
    fn stepping_matches_one_shot_run() {
        let config = MboConfig {
            initial_samples: 6,
            iterations: 3,
            batch: 3,
            candidates: 10,
            reference: vec![1.5, 1.5],
            kappa: 1.0,
            explore_fraction: 0.1,
            seed: 9,
        };
        let oneshot = mbo(&config, toy_sample, |c| c.clone(), toy_objective).unwrap();
        let mut state = MboState::new(&config).unwrap();
        let mut sample = toy_sample;
        let encode = |c: &Vec<f64>| c.clone();
        let mut evaluate = |c: &Vec<f64>| Ok(toy_objective(c));
        let mut steps = 0;
        while !state.is_complete() {
            state.step(&mut sample, &encode, &mut evaluate).unwrap();
            steps += 1;
        }
        assert_eq!(steps, 1 + config.iterations);
        let stepped = state.into_result();
        assert_eq!(stepped.hv_trace, oneshot.hv_trace);
        assert_eq!(stepped.evaluated.len(), oneshot.evaluated.len());
    }

    #[test]
    fn batched_stepping_matches_serial_exactly() {
        let config = MboConfig {
            initial_samples: 6,
            iterations: 3,
            batch: 3,
            candidates: 10,
            reference: vec![1.5, 1.5],
            kappa: 1.0,
            explore_fraction: 0.1,
            seed: 9,
        };
        let serial = mbo(&config, toy_sample, |c| c.clone(), toy_objective).unwrap();
        let mut state = MboState::new(&config).unwrap();
        let mut sample = toy_sample;
        let encode = |c: &Vec<f64>| c.clone();
        // Evaluate in reverse order (as a parallel engine might finish
        // jobs) but return outcomes in candidate order.
        let mut evaluate_batch = |cs: &[Vec<f64>]| -> Vec<BatchOutcome> {
            let mut out: Vec<(usize, Vec<f64>)> = cs
                .iter()
                .enumerate()
                .rev()
                .map(|(i, c)| (i, toy_objective(c)))
                .collect();
            out.sort_by_key(|&(i, _)| i);
            out.into_iter()
                .map(|(i, objectives)| BatchOutcome::Value { objectives, digest: i as u64 + 1 })
                .collect()
        };
        while !state.is_complete() {
            state.step_batched(&mut sample, &encode, &mut evaluate_batch).unwrap();
        }
        assert_eq!(state.eval_digests().len(), state.evaluated().len());
        assert!(state.eval_digests().iter().all(|&d| d != 0));
        let batched = state.into_result();
        assert_eq!(batched.hv_trace, serial.hv_trace);
        assert_eq!(batched.evaluated.len(), serial.evaluated.len());
        for ((ca, oa), (cb, ob)) in batched.evaluated.iter().zip(&serial.evaluated) {
            assert_eq!(ca, cb);
            assert_eq!(oa, ob);
        }
    }

    #[test]
    fn batched_skip_and_fail_semantics() {
        let config = MboConfig {
            initial_samples: 4,
            iterations: 1,
            batch: 2,
            candidates: 6,
            reference: vec![1.5, 1.5],
            kappa: 1.0,
            explore_fraction: 0.0,
            seed: 1,
        };
        // Skip one slot in the initial batch.
        let mut state = MboState::new(&config).unwrap();
        let mut sample = toy_sample;
        let encode = |c: &Vec<f64>| c.clone();
        let mut skipping = |cs: &[Vec<f64>]| -> Vec<BatchOutcome> {
            cs.iter()
                .enumerate()
                .map(|(i, c)| {
                    if i == 1 {
                        BatchOutcome::Skip { reason: "quarantined".into() }
                    } else {
                        BatchOutcome::Value { objectives: toy_objective(c), digest: 0 }
                    }
                })
                .collect()
        };
        state.step_batched(&mut sample, &encode, &mut skipping).unwrap();
        assert_eq!(state.evaluated().len(), config.initial_samples - 1);

        // A Fail mid-batch records earlier slots, then aborts.
        let mut state = MboState::new(&config).unwrap();
        let mut failing = |cs: &[Vec<f64>]| -> Vec<BatchOutcome> {
            cs.iter()
                .enumerate()
                .map(|(i, c)| {
                    if i == 2 {
                        BatchOutcome::Fail(DseError::Evaluation { reason: "hard".into() })
                    } else {
                        BatchOutcome::Value { objectives: toy_objective(c), digest: 0 }
                    }
                })
                .collect()
        };
        let err = state.step_batched(&mut sample, &encode, &mut failing).unwrap_err();
        assert!(matches!(err, DseError::Evaluation { .. }));
        assert_eq!(state.evaluated().len(), 2, "slots before the failure stay recorded");

        // An outcome-count mismatch is rejected.
        let mut state = MboState::new(&config).unwrap();
        let mut short = |_: &[Vec<f64>]| -> Vec<BatchOutcome> { Vec::new() };
        assert!(matches!(
            state.step_batched(&mut sample, &encode, &mut short),
            Err(DseError::BadObjectives { .. })
        ));
    }

    #[test]
    fn progress_accessors_track_the_run_mid_flight() {
        let config = MboConfig {
            initial_samples: 6,
            iterations: 2,
            batch: 3,
            candidates: 10,
            reference: vec![1.5, 1.5],
            kappa: 1.0,
            explore_fraction: 0.1,
            seed: 5,
        };
        let mut state = MboState::new(&config).unwrap();
        assert_eq!(state.planned_evaluations(), 6 + 2 * 3);
        assert_eq!(state.evaluations_done(), 0);
        assert_eq!(state.current_hypervolume(), 0.0);
        assert!(state.pareto_indices().is_empty());
        let mut sample = toy_sample;
        let encode = |c: &Vec<f64>| c.clone();
        let mut evaluate = |c: &Vec<f64>| Ok(toy_objective(c));
        state.step(&mut sample, &encode, &mut evaluate).unwrap();
        assert_eq!(state.evaluations_done(), 6);
        assert!(state.current_hypervolume() > 0.0);
        let mid_front = state.pareto_indices();
        assert!(!mid_front.is_empty());
        while !state.is_complete() {
            state.step(&mut sample, &encode, &mut evaluate).unwrap();
        }
        assert_eq!(state.evaluations_done(), state.planned_evaluations());
        let final_hv = state.current_hypervolume();
        let final_front = state.pareto_indices();
        let result = state.into_result();
        assert_eq!(result.final_hypervolume().to_bits(), final_hv.to_bits());
        assert_eq!(result.pareto_indices(), final_front);
    }

    #[test]
    fn invalid_reference_is_rejected() {
        let empty = MboConfig { reference: vec![], ..MboConfig::default() };
        assert!(MboState::<Vec<f64>>::new(&empty).is_err());
        let nan = MboConfig { reference: vec![1.0, f64::NAN], ..MboConfig::default() };
        assert!(MboState::<Vec<f64>>::new(&nan).is_err());
    }
}
