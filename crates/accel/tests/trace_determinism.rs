//! Observability must never perturb the hardware simulation: a traced
//! `simulate_stream` run is bit-identical to an untraced run —
//! instrumentation only reads clocks and bumps atomics, it never
//! touches the datapath evaluation.

use clapped_accel::{simulate_stream, AcceleratorSpec};
use clapped_axops::Catalog;
use clapped_imgproc::{Image, QuantKernel, SynthKind};

fn run() -> Image {
    let cat = Catalog::standard();
    let m = cat.get("mul8s_tr3").unwrap();
    let kernel = QuantKernel::gaussian(3, 0.85);
    let img = Image::synthetic(SynthKind::Blobs, 16, 16, 5).with_gaussian_noise(12.0, 9);
    let spec = AcceleratorSpec::uniform_2d(16, 3, &m);
    simulate_stream(&spec, &img, kernel.coeffs_2d(), kernel.shift()).unwrap()
}

#[test]
fn traced_and_untraced_streams_are_bit_identical() {
    let untraced = run();

    let path = std::env::temp_dir()
        .join(format!("clapped-accel-trace-test-{}.jsonl", std::process::id()));
    clapped_obs::enable_jsonl(&path).unwrap();
    let traced = run();
    clapped_obs::reset();

    assert_eq!(traced, untraced, "tracing must not change a single output pixel");

    // The trace itself is well-formed JSONL with the stream spans and
    // per-frame counters.
    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 3, "start + events + trailing metrics");
    for line in &lines {
        let v: serde_json::Value =
            serde_json::from_str(line).expect("every trace line parses as JSON");
        assert!(v.get("type").and_then(|t| t.as_str()).is_some());
    }
    assert!(
        text.contains("\"accel.streamsim.frame\"") && text.contains("\"accel.streamsim.pass\""),
        "stream spans must appear in the trace"
    );
    assert!(
        text.contains("accel.streamsim.frames") && text.contains("accel.streamsim.evals"),
        "per-frame counters must appear in the trailing metrics record"
    );
    assert!(
        text.contains("accel.streamsim.lanes_active")
            && text.contains("accel.streamsim.lanes_total"),
        "wide-pipeline lane-utilization counters must appear in the trailing metrics record"
    );
    let _ = std::fs::remove_file(&path);
}
