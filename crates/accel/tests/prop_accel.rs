//! Property tests for accelerator estimation: latency/duty algebra and
//! feature shape invariants over random specs.

use clapped_accel::{
    compute_duty_factor, features, latency_cycles, AcceleratorSpec, FeatureMode, PerfMetric,
};
use clapped_axops::Catalog;
use clapped_imgproc::ConvMode;
use proptest::prelude::*;
use std::sync::OnceLock;

fn catalog() -> &'static Catalog {
    static CATALOG: OnceLock<Catalog> = OnceLock::new();
    CATALOG.get_or_init(Catalog::standard)
}

fn random_spec(image_pick: usize, stride: usize, ds: bool, mode_pick: bool, mul: usize) -> AcceleratorSpec {
    let cat = catalog();
    let image_size = [16, 32, 48, 64, 96, 128][image_pick % 6];
    let mode = if mode_pick { ConvMode::Separable } else { ConvMode::TwoD };
    let taps = match mode {
        ConvMode::TwoD => 9,
        ConvMode::Separable => 6,
    };
    AcceleratorSpec {
        image_size,
        window: 3,
        stride,
        downsample: ds,
        mode,
        muls: vec![cat.at(mul % cat.len()).expect("valid index"); taps],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Latency grows strictly with image size and never depends on the
    /// multiplier choice.
    #[test]
    fn latency_axioms(
        image_pick in 0usize..5, stride in 1usize..=3, ds: bool, sep: bool,
        mul_a in 0usize..20, mul_b in 0usize..20,
    ) {
        let a = random_spec(image_pick, stride, ds, sep, mul_a);
        let b = random_spec(image_pick, stride, ds, sep, mul_b);
        prop_assert_eq!(latency_cycles(&a), latency_cycles(&b));
        let bigger = random_spec(image_pick + 1, stride, ds, sep, mul_a);
        prop_assert!(latency_cycles(&bigger) > latency_cycles(&a));
        // 2D latency is stride independent (input-stream bound).
        if !sep {
            let s1 = random_spec(image_pick, 1, ds, sep, mul_a);
            prop_assert_eq!(latency_cycles(&a), latency_cycles(&s1));
        }
    }

    /// The compute duty factor is in (0, 1] and decreases with stride.
    #[test]
    fn duty_axioms(image_pick in 0usize..6, ds: bool, sep: bool, mul in 0usize..20) {
        let mut last = f64::INFINITY;
        for stride in 1usize..=4 {
            let s = random_spec(image_pick, stride, ds, sep, mul);
            let duty = compute_duty_factor(&s);
            prop_assert!(duty > 0.0 && duty <= 1.0);
            prop_assert!(duty <= last + 1e-12);
            last = duty;
        }
    }

    /// Feature vectors have metric-specific fixed widths for every spec
    /// in the 2D family.
    #[test]
    fn feature_widths_are_stable(
        image_pick in 0usize..6, stride in 1usize..=3, ds: bool, mul in 0usize..20,
    ) {
        static LIB: OnceLock<clapped_accel::OpLibrary> = OnceLock::new();
        let lib = LIB.get_or_init(|| {
            clapped_accel::OpLibrary::characterize(
                catalog(),
                &clapped_netlist::SynthConfig { verify_rounds: 0, ..Default::default() },
            )
            .expect("library synthesizes")
        });
        let spec = random_spec(image_pick, stride, ds, false, mul);
        let widths: Vec<usize> = PerfMetric::ALL
            .iter()
            .map(|&m| features(&spec, m, FeatureMode::Exp, lib).expect("features").len())
            .collect();
        prop_assert_eq!(widths, vec![3 + 18, 3 + 9, 1, 3 + 18]);
        let idx = features(&spec, PerfMetric::Pdp, FeatureMode::Idx, lib).expect("features");
        prop_assert_eq!(idx.len(), 3 + 9);
    }

    /// Line-buffer bits scale linearly with image size.
    #[test]
    fn memory_scaling_is_linear(stride in 1usize..=3, ds: bool, mul in 0usize..20) {
        let small = random_spec(0, stride, ds, false, mul); // 16
        let large = random_spec(3, stride, ds, false, mul); // 64
        prop_assert_eq!(large.line_buffer_bits(), 4 * small.line_buffer_bits());
    }
}
