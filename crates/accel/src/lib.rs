//! FPGA accelerator architectures and performance estimation.
//!
//! Implements Section III of the CLAppED paper: line-buffer-based
//! sliding-window convolution accelerators whose datapaths are generated
//! as gate-level netlists (the per-tap approximate multipliers are
//! instantiated structurally) and characterized through the
//! `clapped-netlist` synthesis flow — the project's stand-in for the
//! paper's 15-minute Vivado runs.
//!
//! Three estimation paths are provided, mirroring the paper:
//!
//! 1. [`characterize`] — **true** characterization: full datapath
//!    synthesis (slow, accurate),
//! 2. [`characterize_fast`] — compositional estimate from per-operator
//!    synthesis reports (fast, approximate),
//! 3. ML-based prediction: [`features`] extracts the Table-I feature
//!    vectors consumed by `clapped-mlp` regressors.
//!
//! # Examples
//!
//! ```
//! use clapped_accel::{characterize, AcceleratorSpec, CharacterizeConfig};
//! use clapped_axops::Catalog;
//!
//! let catalog = Catalog::standard();
//! let spec = AcceleratorSpec::uniform_2d(32, 3, &catalog.get("mul8s_tr4").unwrap());
//! let report = characterize(&spec, &CharacterizeConfig::default()).unwrap();
//! assert!(report.luts > 0);
//! assert!(report.latency_cycles > 32 * 32);
//! ```

mod datapath;
mod features;
mod perf;
mod spec;
mod streamsim;

pub use datapath::{build_datapath, build_datapath_cached, datapath_cache_stats};
pub use features::{features, table1_rows, FeatureMode, MulProps, OpLibrary, PerfMetric};
pub use perf::{characterize, characterize_fast, compute_duty_factor, latency_cycles, AccelReport, CharacterizeConfig};
pub use spec::AcceleratorSpec;
pub use streamsim::{simulate_stream, simulate_stream_ref};

use std::error::Error;
use std::fmt;

/// Error type for accelerator characterization.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AccelError {
    /// The specification is internally inconsistent.
    BadSpec {
        /// Description of the problem.
        reason: String,
    },
    /// Synthesis of the datapath failed.
    Synth(String),
    /// Gate-level simulation of the datapath failed.
    Sim(String),
}

impl fmt::Display for AccelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccelError::BadSpec { reason } => write!(f, "invalid accelerator spec: {reason}"),
            AccelError::Synth(msg) => write!(f, "datapath synthesis failed: {msg}"),
            AccelError::Sim(msg) => write!(f, "datapath simulation failed: {msg}"),
        }
    }
}

impl Error for AccelError {}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, AccelError>;
