//! Bit-true accelerator simulation: streams an image through the
//! generated datapath *netlist* and produces the output image the
//! hardware would produce.
//!
//! This closes the loop between the software application model
//! (`clapped-imgproc`'s `ConvEngine`) and the hardware (the datapath
//! built by [`crate::build_datapath`]): both must produce identical
//! pixels for matching configurations, which the integration tests
//! assert.
//!
//! The production path here is *compiled*: the datapath netlist is
//! memoized per `(spec, shift)` digest ([`crate::build_datapath_cached`])
//! so steady-state streams never rebuild it, coefficient input blocks
//! are broadcast once per pass, the frame is quantized into a
//! border-replicated padded buffer once per pass (tap reads become
//! branch-free indexed loads), and whole frames are evaluated in
//! 512-lane wide-word blocks with pixels moved between bytes and input
//! bitplanes eight lanes at a time via [`transpose8x8`] — no per-chunk
//! `Vec` churn, no per-bit packing loops. [`simulate_stream_ref`]
//! retains the original per-frame-rebuild, 64-lane implementation;
//! tests pin the two bit-identical and `bench_sim` measures the gap.

use crate::{build_datapath, build_datapath_cached, AccelError, AcceleratorSpec, Result};
use clapped_imgproc::{ConvMode, Image};
use clapped_netlist::{pack_bus_samples, transpose8x8, Netlist};

/// Words per wide evaluation block: every datapath evaluation carries
/// `64 × BLOCK_WORDS` output positions.
const BLOCK_WORDS: usize = 8;
const BLOCK_LANES: usize = 64 * BLOCK_WORDS;

fn sim_err(e: clapped_netlist::NetlistError) -> AccelError {
    AccelError::Sim(e.to_string())
}

/// Simulates the accelerator's processing of `image` with the given
/// quantized kernel weights, returning the output image.
///
/// The weights are the per-tap coefficient inputs (`window²` for 2D,
/// `2·window` for separable — the 1DH weights first); `shift` is the
/// normalization built into the datapath. Pixels are quantized/rescaled
/// with the same convention as the software engine (`v >> 1` in,
/// `v << 1` out).
///
/// The output has the configuration's natural size (shrunk when
/// downsampling).
///
/// # Errors
///
/// Propagates specification and netlist-simulation errors.
///
/// # Panics
///
/// Panics if `weights.len() != spec.taps()` or the image is not
/// `spec.image_size` squared.
pub fn simulate_stream(
    spec: &AcceleratorSpec,
    image: &Image,
    weights: &[i8],
    shift: u32,
) -> Result<Image> {
    let _span = clapped_obs::span("accel.streamsim.frame");
    spec.validate()?;
    assert_eq!(weights.len(), spec.taps(), "one weight per tap");
    assert_eq!(image.width(), spec.image_size, "image width mismatch");
    assert_eq!(image.height(), spec.image_size, "image height mismatch");
    clapped_obs::count("accel.streamsim.frames", 1);
    let datapath = build_datapath_cached(spec, shift)?;
    match spec.mode {
        ConvMode::TwoD => {
            let w = spec.window;
            let out = run_pe_grid(&datapath, image, weights, w, spec.stride, spec.stride, 0, |x, y, dx, dy, _half| {
                (x + dx, y + dy)
            })?;
            Ok(finish(out, image, spec))
        }
        ConvMode::Separable => {
            let w = spec.window;
            // Horizontal pass with the first w taps (outputs 0..8 of the
            // datapath), strided along x.
            let h = run_pe_grid(&datapath, image, &weights[..w], w, spec.stride, 1, 0, |x, y, dx, _dy, half| {
                (x + dx, y + half)
            })?;
            let h_img = if spec.downsample {
                h
            } else {
                replicate(&h, image.width(), image.height(), spec.stride, 1)
            };
            // Vertical pass with the last w taps (outputs 8..16), strided
            // along y.
            let v = run_pe_grid(&datapath, &h_img, &weights[w..], w, 1, spec.stride, 8, |x, y, _dx, dy, half| {
                (x + half, y + dy)
            })?;
            let v_img = if spec.downsample {
                v
            } else {
                replicate(&v, h_img.width(), h_img.height(), 1, spec.stride)
            };
            Ok(v_img)
        }
    }
}

/// The retained reference implementation: rebuilds the datapath netlist
/// on every call and evaluates 64 output positions per pass with
/// per-chunk input packing — exactly the pre-wide-word pipeline.
/// [`simulate_stream`] is pinned bit-identical to this path by tests
/// and benchmarked against it in `bench_sim`.
///
/// # Errors
///
/// Propagates specification and netlist-simulation errors.
///
/// # Panics
///
/// See [`simulate_stream`].
pub fn simulate_stream_ref(
    spec: &AcceleratorSpec,
    image: &Image,
    weights: &[i8],
    shift: u32,
) -> Result<Image> {
    spec.validate()?;
    assert_eq!(weights.len(), spec.taps(), "one weight per tap");
    assert_eq!(image.width(), spec.image_size, "image width mismatch");
    assert_eq!(image.height(), spec.image_size, "image height mismatch");
    let datapath = build_datapath(spec, shift)?;
    match spec.mode {
        ConvMode::TwoD => {
            let w = spec.window;
            let out = run_pe_grid_ref64(&datapath, image, weights, w, spec.stride, spec.stride, 0, |img, x, y, dx, dy, half| {
                img.get_clamped(x as isize + dx as isize - half, y as isize + dy as isize - half)
            })?;
            Ok(finish(out, image, spec))
        }
        ConvMode::Separable => {
            let w = spec.window;
            let h = run_pe_grid_ref64(&datapath, image, &weights[..w], w, spec.stride, 1, 0, |img, x, y, dx, _dy, half| {
                img.get_clamped(x as isize + dx as isize - half, y as isize)
            })?;
            let h_img = if spec.downsample {
                h
            } else {
                replicate(&h, image.width(), image.height(), spec.stride, 1)
            };
            let v = run_pe_grid_ref64(&datapath, &h_img, &weights[w..], w, 1, spec.stride, 8, |img, x, y, _dx, dy, half| {
                img.get_clamped(x as isize, y as isize + dy as isize - half)
            })?;
            let v_img = if spec.downsample {
                v
            } else {
                replicate(&v, h_img.width(), h_img.height(), 1, spec.stride)
            };
            Ok(v_img)
        }
    }
}

/// Evaluates the datapath on the stride grid, [`BLOCK_LANES`] output
/// positions per netlist evaluation. `tap_coord` maps an input-space
/// origin and tap index `(dx, dy)` to coordinates in the
/// border-replicated padded frame; `out_base` selects which output byte
/// of the datapath to read (separable datapaths expose two PEs).
///
/// The input block vector is assembled once per pass: coefficient bits
/// are lane-constant broadcasts, the inactive PE of a separable
/// datapath stays zero for the whole pass, and only the active PE's
/// pixel blocks are rewritten per chunk. The frame is quantized into a
/// flat padded buffer up front, so every tap read is one branch-free
/// load, and pixels move between bytes and bitplanes eight lanes per
/// [`transpose8x8`]. The evaluation scratch and output buffers are
/// reused across every chunk of the pass.
#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
fn run_pe_grid(
    datapath: &Netlist,
    image: &Image,
    weights: &[i8],
    window: usize,
    stride_x: usize,
    stride_y: usize,
    out_base: usize,
    tap_coord: impl Fn(usize, usize, usize, usize, usize) -> (usize, usize),
) -> Result<Image> {
    let _span = clapped_obs::span("accel.streamsim.pass");
    let half = window / 2;
    let taps = weights.len();
    let is_2d = taps == window * window;
    let ow = image.width().div_ceil(stride_x);
    let oh = image.height().div_ceil(stride_y);
    let mut out = Image::filled(ow, oh, 0);
    // Quantized, border-replicated frame: padded (px, py) holds
    // input pixel (px - half, py - half) clamped to the frame, already
    // quantized with the datapath's `v >> 1` convention.
    let pw = image.width() + 2 * half;
    let ph = image.height() + 2 * half;
    let mut padded = vec![0u8; pw * ph];
    for py in 0..ph {
        for px in 0..pw {
            padded[py * pw + px] =
                image.get_clamped(px as isize - half as isize, py as isize - half as isize) >> 1;
        }
    }
    // The datapath declares PE inputs in build order; out_base == 0
    // means this pass drives the first PE, otherwise the second.
    let n_inputs = datapath.inputs().len();
    let active_base = if n_inputs == taps * 16 || out_base == 0 { 0 } else { taps * 16 };
    let mut inputs: Vec<[u64; BLOCK_WORDS]> = vec![[0u64; BLOCK_WORDS]; n_inputs];
    // Coefficients are constant across lanes and chunks: broadcast each
    // bit once per pass. Per tap the datapath declares px then co.
    for (t, &c) in weights.iter().enumerate() {
        for k in 0..8 {
            inputs[active_base + t * 16 + 8 + k] = if (c as u8 >> k) & 1 == 1 {
                [!0u64; BLOCK_WORDS]
            } else {
                [0u64; BLOCK_WORDS]
            };
        }
    }
    let mut scratch: Vec<[u64; BLOCK_WORDS]> = Vec::new();
    let mut outs: Vec<[u64; BLOCK_WORDS]> = Vec::new();
    let total = ow * oh;
    let mut start = 0usize;
    while start < total {
        let chunk = (total - start).min(BLOCK_LANES);
        for t in 0..taps {
            let (dx, dy) = if is_2d { (t % window, t / window) } else { (t, t) };
            let px_blocks = &mut inputs[active_base + t * 16..active_base + t * 16 + 8];
            px_blocks.fill([0u64; BLOCK_WORDS]);
            let (mut ox, mut oy) = (start % ow, start / ow);
            let mut lane = 0usize;
            while lane < chunk {
                let octet = (chunk - lane).min(8);
                // Byte l = lane l's quantized pixel; transpose flips the
                // octet into eight bitplane bytes in one go.
                let mut bytes = 0u64;
                for l in 0..octet {
                    let (cx, cy) = tap_coord(ox * stride_x, oy * stride_y, dx, dy, half);
                    bytes |= u64::from(padded[cy * pw + cx]) << (8 * l);
                    ox += 1;
                    if ox == ow {
                        ox = 0;
                        oy += 1;
                    }
                }
                let planes = transpose8x8(bytes);
                // `lane` is octet-aligned, so this is a byte shift.
                let (word, shift) = (lane / 64, lane % 64);
                for (k, block) in px_blocks.iter_mut().enumerate() {
                    block[word] |= ((planes >> (8 * k)) & 0xff) << shift;
                }
                lane += octet;
            }
        }
        datapath
            .simulate_blocks_into::<BLOCK_WORDS>(&inputs, &mut scratch, &mut outs)
            .map_err(sim_err)?;
        clapped_obs::count("accel.streamsim.evals", 1);
        clapped_obs::count("accel.streamsim.lanes_active", chunk as u64);
        clapped_obs::count("accel.streamsim.lanes_total", BLOCK_LANES as u64);
        let (mut ox, mut oy) = (start % ow, start / ow);
        let mut lane = 0usize;
        while lane < chunk {
            let octet = (chunk - lane).min(8);
            let (word, shift) = (lane / 64, lane % 64);
            let mut planes = 0u64;
            for k in 0..8 {
                planes |= ((outs[out_base + k][word] >> shift) & 0xff) << (8 * k);
            }
            let bytes = transpose8x8(planes);
            for l in 0..octet {
                out.set(ox, oy, (((bytes >> (8 * l)) & 0xff) as u8) << 1);
                ox += 1;
                if ox == ow {
                    ox = 0;
                    oy += 1;
                }
            }
            lane += octet;
        }
        start += chunk;
    }
    clapped_obs::count("accel.streamsim.pixels", total as u64);
    Ok(out)
}

/// The retained 64-lane grid runner with per-chunk `Vec` packing — the
/// reference [`run_pe_grid`] is pinned against.
#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
fn run_pe_grid_ref64(
    datapath: &Netlist,
    image: &Image,
    weights: &[i8],
    window: usize,
    stride_x: usize,
    stride_y: usize,
    out_base: usize,
    tap_window: impl Fn(&Image, usize, usize, usize, usize, isize) -> u8,
) -> Result<Image> {
    let half = (window / 2) as isize;
    let taps = weights.len();
    let is_2d = taps == window * window;
    let ow = image.width().div_ceil(stride_x);
    let oh = image.height().div_ceil(stride_y);
    let mut out = Image::filled(ow, oh, 0);
    let positions: Vec<(usize, usize)> = (0..oh)
        .flat_map(|oy| (0..ow).map(move |ox| (ox, oy)))
        .collect();
    for chunk in positions.chunks(64) {
        // Input words: per tap, px bus then co bus (declaration order of
        // the relevant PE). For separable datapaths the vertical PE's
        // inputs come second; unused PE inputs are driven with zeros.
        let mut words: Vec<u64> = Vec::new();
        let pack_taps = |active: bool, words: &mut Vec<u64>| {
            for t in 0..taps {
                let (dx, dy) = if is_2d {
                    (t % window, t / window)
                } else {
                    (t, t)
                };
                let px_vals: Vec<i64> = chunk
                    .iter()
                    .map(|&(ox, oy)| {
                        if active {
                            let x = ox * stride_x;
                            let y = oy * stride_y;
                            i64::from(tap_window(image, x, y, dx, dy, half) >> 1)
                        } else {
                            0
                        }
                    })
                    .collect();
                words.extend(pack_bus_samples(&px_vals, 8));
                let co_vals: Vec<i64> = chunk
                    .iter()
                    .map(|_| if active { i64::from(weights[t]) } else { 0 })
                    .collect();
                words.extend(pack_bus_samples(&co_vals, 8));
            }
        };
        if datapath.inputs().len() == taps * 16 {
            pack_taps(true, &mut words);
        } else if out_base == 0 {
            pack_taps(true, &mut words);
            pack_taps(false, &mut words);
        } else {
            pack_taps(false, &mut words);
            pack_taps(true, &mut words);
        }
        let outs = datapath.simulate_words(&words).map_err(sim_err)?;
        for (lane, &(ox, oy)) in chunk.iter().enumerate() {
            let mut v = 0u8;
            for bit in 0..8 {
                if (outs[out_base + bit] >> lane) & 1 == 1 {
                    v |= 1 << bit;
                }
            }
            out.set(ox, oy, v << 1);
        }
    }
    Ok(out)
}

/// Zero-order-hold replication of a strided grid back to full size.
fn replicate(grid: &Image, width: usize, height: usize, sx: usize, sy: usize) -> Image {
    Image::from_fn(width, height, |x, y| grid.get(x / sx, y / sy))
}

fn finish(out: Image, image: &Image, spec: &AcceleratorSpec) -> Image {
    if spec.downsample || spec.stride == 1 {
        out
    } else {
        replicate(&out, image.width(), image.height(), spec.stride, spec.stride)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapped_axops::{Catalog, Mul8s};
    use clapped_imgproc::{ConvConfig, ConvEngine, QuantKernel, SynthKind};
    use std::sync::Arc;

    fn engine_and_kernel() -> (ConvEngine, QuantKernel) {
        let k = QuantKernel::gaussian(3, 0.85);
        (ConvEngine::new(k.clone()), k)
    }

    fn taps_of(m: &Arc<clapped_axops::AxMul>, n: usize) -> Vec<Arc<dyn Mul8s>> {
        (0..n).map(|_| m.clone() as Arc<dyn Mul8s>).collect()
    }

    #[test]
    fn hardware_matches_software_2d() {
        let cat = Catalog::standard();
        for op in ["mul8s_exact", "mul8s_tr4", "mul8s_drum4"] {
            let m = cat.get(op).unwrap();
            let img = Image::synthetic(SynthKind::SmoothField, 16, 16, 3);
            let (engine, kernel) = engine_and_kernel();
            let cfg = ConvConfig::default();
            let sw = engine.convolve(&img, &cfg, &taps_of(&m, 9)).unwrap();
            let spec = AcceleratorSpec::uniform_2d(16, 3, &m);
            let hw = simulate_stream(&spec, &img, kernel.coeffs_2d(), kernel.shift()).unwrap();
            assert_eq!(sw, hw, "hardware/software divergence for {op}");
        }
    }

    #[test]
    fn hardware_matches_software_strided() {
        let cat = Catalog::standard();
        let m = cat.get("mul8s_tr3").unwrap();
        let img = Image::synthetic(SynthKind::Blobs, 16, 16, 5);
        let (engine, kernel) = engine_and_kernel();
        for downsample in [true, false] {
            let cfg = ConvConfig {
                stride: 2,
                downsample,
                ..ConvConfig::default()
            };
            let sw = engine.convolve(&img, &cfg, &taps_of(&m, 9)).unwrap();
            let spec = AcceleratorSpec {
                stride: 2,
                downsample,
                ..AcceleratorSpec::uniform_2d(16, 3, &m)
            };
            let hw = simulate_stream(&spec, &img, kernel.coeffs_2d(), kernel.shift()).unwrap();
            assert_eq!(sw, hw, "divergence with downsample={downsample}");
        }
    }

    #[test]
    fn hardware_matches_software_separable() {
        let cat = Catalog::standard();
        let m = cat.get("mul8s_exact").unwrap();
        let img = Image::synthetic(SynthKind::Gradient, 16, 16, 0);
        let (engine, kernel) = engine_and_kernel();
        let cfg = ConvConfig {
            mode: ConvMode::Separable,
            ..ConvConfig::default()
        };
        let sw = engine.convolve(&img, &cfg, &taps_of(&m, 6)).unwrap();
        let spec = AcceleratorSpec {
            mode: ConvMode::Separable,
            muls: vec![m.clone(); 6],
            ..AcceleratorSpec::uniform_2d(16, 3, &m)
        };
        let mut weights = kernel.coeffs_1d().to_vec();
        weights.extend_from_slice(kernel.coeffs_1d());
        let hw = simulate_stream(&spec, &img, &weights, kernel.shift_1d()).unwrap();
        assert_eq!(sw, hw, "separable hardware/software divergence");
    }

    #[test]
    fn mixed_tap_multipliers_match() {
        let cat = Catalog::standard();
        let exact = cat.get("mul8s_exact").unwrap();
        let rough = cat.get("mul8s_bam_v6_h2").unwrap();
        let img = Image::synthetic(SynthKind::Checkerboard, 16, 16, 0);
        let (engine, kernel) = engine_and_kernel();
        let mut taps = taps_of(&exact, 9);
        taps[0] = rough.clone();
        taps[4] = rough.clone();
        let sw = engine.convolve(&img, &ConvConfig::default(), &taps).unwrap();
        let mut spec = AcceleratorSpec::uniform_2d(16, 3, &exact);
        spec.muls[0] = rough.clone();
        spec.muls[4] = rough;
        let hw = simulate_stream(&spec, &img, kernel.coeffs_2d(), kernel.shift()).unwrap();
        assert_eq!(sw, hw);
    }

    #[test]
    fn wide_pipeline_matches_reference_across_modes() {
        let cat = Catalog::standard();
        let m = cat.get("mul8s_tr2").unwrap();
        let (_, kernel) = engine_and_kernel();
        let img = Image::synthetic(SynthKind::Blobs, 16, 16, 11);
        for stride in [1, 2, 3] {
            for downsample in [false, true] {
                let spec = AcceleratorSpec {
                    stride,
                    downsample,
                    ..AcceleratorSpec::uniform_2d(16, 3, &m)
                };
                let fast = simulate_stream(&spec, &img, kernel.coeffs_2d(), kernel.shift()).unwrap();
                let slow =
                    simulate_stream_ref(&spec, &img, kernel.coeffs_2d(), kernel.shift()).unwrap();
                assert_eq!(fast, slow, "stride={stride} downsample={downsample}");
            }
        }
        // Separable: two PEs, both pass orders exercised.
        let spec = AcceleratorSpec {
            mode: ConvMode::Separable,
            muls: vec![m.clone(); 6],
            ..AcceleratorSpec::uniform_2d(16, 3, &m)
        };
        let mut weights = kernel.coeffs_1d().to_vec();
        weights.extend_from_slice(kernel.coeffs_1d());
        let fast = simulate_stream(&spec, &img, &weights, kernel.shift_1d()).unwrap();
        let slow = simulate_stream_ref(&spec, &img, &weights, kernel.shift_1d()).unwrap();
        assert_eq!(fast, slow, "separable wide/reference divergence");
    }

    #[test]
    fn datapath_memo_stops_rebuilding() {
        let cat = Catalog::standard();
        let m = cat.get("mul8s_tr6").unwrap();
        let (_, kernel) = engine_and_kernel();
        let img = Image::synthetic(SynthKind::Gradient, 16, 16, 2);
        let spec = AcceleratorSpec::uniform_2d(16, 3, &m);
        let first = simulate_stream(&spec, &img, kernel.coeffs_2d(), kernel.shift()).unwrap();
        let before = crate::datapath_cache_stats();
        for _ in 0..3 {
            let again = simulate_stream(&spec, &img, kernel.coeffs_2d(), kernel.shift()).unwrap();
            assert_eq!(first, again);
        }
        let after = crate::datapath_cache_stats();
        assert_eq!(after.misses, before.misses, "warm frames must not rebuild the datapath");
        assert!(after.hits >= before.hits + 3);
    }
}
