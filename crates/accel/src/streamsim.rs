//! Bit-true accelerator simulation: streams an image through the
//! generated datapath *netlist* and produces the output image the
//! hardware would produce.
//!
//! This closes the loop between the software application model
//! (`clapped-imgproc`'s `ConvEngine`) and the hardware (the datapath
//! built by [`crate::build_datapath`]): both must produce identical
//! pixels for matching configurations, which the integration tests
//! assert. Simulation packs 64 output pixels per netlist evaluation, so
//! a 64×64 image takes only ~64 datapath evaluations.

use crate::{build_datapath, AcceleratorSpec, Result};
use clapped_imgproc::{ConvMode, Image};
use clapped_netlist::{pack_bus_samples, Netlist};

/// Simulates the accelerator's processing of `image` with the given
/// quantized kernel weights, returning the output image.
///
/// The weights are the per-tap coefficient inputs (`window²` for 2D,
/// `2·window` for separable — the 1DH weights first); `shift` is the
/// normalization built into the datapath. Pixels are quantized/rescaled
/// with the same convention as the software engine (`v >> 1` in,
/// `v << 1` out).
///
/// The output has the configuration's natural size (shrunk when
/// downsampling).
///
/// # Errors
///
/// Propagates specification and netlist-simulation errors.
///
/// # Panics
///
/// Panics if `weights.len() != spec.taps()` or the image is not
/// `spec.image_size` squared.
pub fn simulate_stream(
    spec: &AcceleratorSpec,
    image: &Image,
    weights: &[i8],
    shift: u32,
) -> Result<Image> {
    let _span = clapped_obs::span("accel.streamsim.frame");
    spec.validate()?;
    assert_eq!(weights.len(), spec.taps(), "one weight per tap");
    assert_eq!(image.width(), spec.image_size, "image width mismatch");
    assert_eq!(image.height(), spec.image_size, "image height mismatch");
    clapped_obs::count("accel.streamsim.frames", 1);
    let datapath = build_datapath(spec, shift)?;
    match spec.mode {
        ConvMode::TwoD => {
            let w = spec.window;
            let out = run_pe_grid(&datapath, image, weights, w, spec.stride, spec.stride, 0, |img, x, y, dx, dy, half| {
                img.get_clamped(x as isize + dx as isize - half, y as isize + dy as isize - half)
            });
            Ok(finish(out, image, spec))
        }
        ConvMode::Separable => {
            let w = spec.window;
            // Horizontal pass with the first w taps (outputs 0..8 of the
            // datapath), strided along x.
            let h = run_pe_grid(&datapath, image, &weights[..w], w, spec.stride, 1, 0, |img, x, y, dx, _dy, half| {
                img.get_clamped(x as isize + dx as isize - half, y as isize)
            });
            let h_img = if spec.downsample {
                h
            } else {
                replicate(&h, image.width(), image.height(), spec.stride, 1)
            };
            // Vertical pass with the last w taps (outputs 8..16), strided
            // along y.
            let v = run_pe_grid(&datapath, &h_img, &weights[w..], w, 1, spec.stride, 8, |img, x, y, _dx, dy, half| {
                img.get_clamped(x as isize, y as isize + dy as isize - half)
            });
            let v_img = if spec.downsample {
                v
            } else {
                replicate(&v, h_img.width(), h_img.height(), 1, spec.stride)
            };
            Ok(v_img)
        }
    }
}

/// Evaluates the datapath on the stride grid, 64 output positions per
/// netlist evaluation. `tap_window` gathers the pixel for tap index
/// `(dx, dy)`; `out_base` selects which output byte of the datapath to
/// read (separable datapaths expose two PEs).
#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
fn run_pe_grid(
    datapath: &Netlist,
    image: &Image,
    weights: &[i8],
    window: usize,
    stride_x: usize,
    stride_y: usize,
    out_base: usize,
    tap_window: impl Fn(&Image, usize, usize, usize, usize, isize) -> u8,
) -> Image {
    let _span = clapped_obs::span("accel.streamsim.pass");
    let half = (window / 2) as isize;
    let taps = weights.len();
    let is_2d = taps == window * window;
    let ow = image.width().div_ceil(stride_x);
    let oh = image.height().div_ceil(stride_y);
    let mut out = Image::filled(ow, oh, 0);
    let positions: Vec<(usize, usize)> = (0..oh)
        .flat_map(|oy| (0..ow).map(move |ox| (ox, oy)))
        .collect();
    for chunk in positions.chunks(64) {
        // Input words: per tap, px bus then co bus (declaration order of
        // the relevant PE). For separable datapaths the vertical PE's
        // inputs come second; unused PE inputs are driven with zeros.
        let mut words: Vec<u64> = Vec::new();
        let pack_taps = |active: bool, words: &mut Vec<u64>| {
            for t in 0..taps {
                let (dx, dy) = if is_2d {
                    (t % window, t / window)
                } else {
                    (t, t)
                };
                let px_vals: Vec<i64> = chunk
                    .iter()
                    .map(|&(ox, oy)| {
                        if active {
                            let x = ox * stride_x;
                            let y = oy * stride_y;
                            i64::from(tap_window(image, x, y, dx, dy, half) >> 1)
                        } else {
                            0
                        }
                    })
                    .collect();
                words.extend(pack_bus_samples(&px_vals, 8));
                let co_vals: Vec<i64> = chunk
                    .iter()
                    .map(|_| if active { i64::from(weights[t]) } else { 0 })
                    .collect();
                words.extend(pack_bus_samples(&co_vals, 8));
            }
        };
        // The datapath declares PE inputs in build order; out_base == 0
        // means we drive the first PE actively, otherwise the second.
        if datapath.inputs().len() == taps * 16 {
            pack_taps(true, &mut words);
        } else if out_base == 0 {
            pack_taps(true, &mut words);
            pack_taps(false, &mut words);
        } else {
            pack_taps(false, &mut words);
            pack_taps(true, &mut words);
        }
        let outs = datapath
            .simulate_words(&words)
            .expect("datapath interface generated consistently");
        clapped_obs::count("accel.streamsim.evals", 1);
        for (lane, &(ox, oy)) in chunk.iter().enumerate() {
            let mut v = 0u8;
            for bit in 0..8 {
                if (outs[out_base + bit] >> lane) & 1 == 1 {
                    v |= 1 << bit;
                }
            }
            out.set(ox, oy, v << 1);
        }
    }
    clapped_obs::count("accel.streamsim.pixels", (ow * oh) as u64);
    out
}

/// Zero-order-hold replication of a strided grid back to full size.
fn replicate(grid: &Image, width: usize, height: usize, sx: usize, sy: usize) -> Image {
    Image::from_fn(width, height, |x, y| grid.get(x / sx, y / sy))
}

fn finish(out: Image, image: &Image, spec: &AcceleratorSpec) -> Image {
    if spec.downsample || spec.stride == 1 {
        out
    } else {
        replicate(&out, image.width(), image.height(), spec.stride, spec.stride)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapped_axops::{Catalog, Mul8s};
    use clapped_imgproc::{ConvConfig, ConvEngine, QuantKernel, SynthKind};
    use std::sync::Arc;

    fn engine_and_kernel() -> (ConvEngine, QuantKernel) {
        let k = QuantKernel::gaussian(3, 0.85);
        (ConvEngine::new(k.clone()), k)
    }

    fn taps_of(m: &Arc<clapped_axops::AxMul>, n: usize) -> Vec<Arc<dyn Mul8s>> {
        (0..n).map(|_| m.clone() as Arc<dyn Mul8s>).collect()
    }

    #[test]
    fn hardware_matches_software_2d() {
        let cat = Catalog::standard();
        for op in ["mul8s_exact", "mul8s_tr4", "mul8s_drum4"] {
            let m = cat.get(op).unwrap();
            let img = Image::synthetic(SynthKind::SmoothField, 16, 16, 3);
            let (engine, kernel) = engine_and_kernel();
            let cfg = ConvConfig::default();
            let sw = engine.convolve(&img, &cfg, &taps_of(&m, 9)).unwrap();
            let spec = AcceleratorSpec::uniform_2d(16, 3, &m);
            let hw = simulate_stream(&spec, &img, kernel.coeffs_2d(), kernel.shift()).unwrap();
            assert_eq!(sw, hw, "hardware/software divergence for {op}");
        }
    }

    #[test]
    fn hardware_matches_software_strided() {
        let cat = Catalog::standard();
        let m = cat.get("mul8s_tr3").unwrap();
        let img = Image::synthetic(SynthKind::Blobs, 16, 16, 5);
        let (engine, kernel) = engine_and_kernel();
        for downsample in [true, false] {
            let cfg = ConvConfig {
                stride: 2,
                downsample,
                ..ConvConfig::default()
            };
            let sw = engine.convolve(&img, &cfg, &taps_of(&m, 9)).unwrap();
            let spec = AcceleratorSpec {
                stride: 2,
                downsample,
                ..AcceleratorSpec::uniform_2d(16, 3, &m)
            };
            let hw = simulate_stream(&spec, &img, kernel.coeffs_2d(), kernel.shift()).unwrap();
            assert_eq!(sw, hw, "divergence with downsample={downsample}");
        }
    }

    #[test]
    fn hardware_matches_software_separable() {
        let cat = Catalog::standard();
        let m = cat.get("mul8s_exact").unwrap();
        let img = Image::synthetic(SynthKind::Gradient, 16, 16, 0);
        let (engine, kernel) = engine_and_kernel();
        let cfg = ConvConfig {
            mode: ConvMode::Separable,
            ..ConvConfig::default()
        };
        let sw = engine.convolve(&img, &cfg, &taps_of(&m, 6)).unwrap();
        let spec = AcceleratorSpec {
            mode: ConvMode::Separable,
            muls: vec![m.clone(); 6],
            ..AcceleratorSpec::uniform_2d(16, 3, &m)
        };
        let mut weights = kernel.coeffs_1d().to_vec();
        weights.extend_from_slice(kernel.coeffs_1d());
        let hw = simulate_stream(&spec, &img, &weights, kernel.shift_1d()).unwrap();
        assert_eq!(sw, hw, "separable hardware/software divergence");
    }

    #[test]
    fn mixed_tap_multipliers_match() {
        let cat = Catalog::standard();
        let exact = cat.get("mul8s_exact").unwrap();
        let rough = cat.get("mul8s_bam_v6_h2").unwrap();
        let img = Image::synthetic(SynthKind::Checkerboard, 16, 16, 0);
        let (engine, kernel) = engine_and_kernel();
        let mut taps = taps_of(&exact, 9);
        taps[0] = rough.clone();
        taps[4] = rough.clone();
        let sw = engine.convolve(&img, &ConvConfig::default(), &taps).unwrap();
        let mut spec = AcceleratorSpec::uniform_2d(16, 3, &exact);
        spec.muls[0] = rough.clone();
        spec.muls[4] = rough;
        let hw = simulate_stream(&spec, &img, kernel.coeffs_2d(), kernel.shift()).unwrap();
        assert_eq!(sw, hw);
    }
}
