//! Accelerator specifications.

use crate::{AccelError, Result};
use clapped_axops::AxMul;
use clapped_imgproc::ConvMode;
use std::sync::Arc;

/// A line-buffer sliding-window convolution accelerator design point.
///
/// The multiplier list assigns one operator per multiplication site:
/// `window²` sites for 2D mode, `2·window` for the separable 1DH→1DV
/// accelerator pair.
///
/// # Examples
///
/// ```
/// use clapped_accel::AcceleratorSpec;
/// use clapped_axops::Catalog;
///
/// let catalog = Catalog::standard();
/// let spec = AcceleratorSpec::uniform_2d(64, 3, &catalog.get("mul8s_exact").unwrap());
/// assert_eq!(spec.muls.len(), 9);
/// assert!(spec.validate().is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct AcceleratorSpec {
    /// Square input image size `N` (the accelerator streams `N×N`
    /// pixels).
    pub image_size: usize,
    /// Window size (odd).
    pub window: usize,
    /// Sliding stride.
    pub stride: usize,
    /// Whether strided outputs shrink the image (downsampling).
    pub downsample: bool,
    /// 2D or separable mode.
    pub mode: ConvMode,
    /// Per-tap multiplier operators.
    pub muls: Vec<Arc<AxMul>>,
}

impl AcceleratorSpec {
    /// Convenience constructor: 2D accelerator with one multiplier type
    /// in every tap, stride 1, no downsampling.
    pub fn uniform_2d(image_size: usize, window: usize, m: &Arc<AxMul>) -> AcceleratorSpec {
        AcceleratorSpec {
            image_size,
            window,
            stride: 1,
            downsample: false,
            mode: ConvMode::TwoD,
            muls: vec![m.clone(); window * window],
        }
    }

    /// Number of multiplication sites of this architecture.
    pub fn taps(&self) -> usize {
        match self.mode {
            ConvMode::TwoD => self.window * self.window,
            ConvMode::Separable => 2 * self.window,
        }
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::BadSpec`] when a field is out of domain or
    /// the multiplier list length does not match [`AcceleratorSpec::taps`].
    pub fn validate(&self) -> Result<()> {
        if self.window.is_multiple_of(2) || self.window == 0 || self.window > 9 {
            return Err(AccelError::BadSpec {
                reason: format!("window {} must be odd and at most 9", self.window),
            });
        }
        if !(1..=4).contains(&self.stride) {
            return Err(AccelError::BadSpec {
                reason: format!("stride {} out of 1..=4", self.stride),
            });
        }
        if self.image_size < self.window {
            return Err(AccelError::BadSpec {
                reason: format!(
                    "image size {} smaller than window {}",
                    self.image_size, self.window
                ),
            });
        }
        if self.muls.len() != self.taps() {
            return Err(AccelError::BadSpec {
                reason: format!(
                    "{} multipliers supplied for {} taps",
                    self.muls.len(),
                    self.taps()
                ),
            });
        }
        Ok(())
    }

    /// Stable content digest of everything that determines the generated
    /// datapath: the architectural fields plus every tap's behavioural
    /// digest, in tap order. Two specs with equal digests build
    /// identical datapath netlists, which is what makes the digest a
    /// sound memoization key for [`crate::build_datapath_cached`].
    pub fn content_digest(&self) -> u64 {
        use clapped_axops::Mul8s;
        let mode = match self.mode {
            ConvMode::TwoD => "2d",
            ConvMode::Separable => "separable",
        };
        let taps: Vec<u64> = self
            .muls
            .iter()
            // AxMul always carries a behaviour digest; 0 is an inert
            // placeholder that keeps the field total.
            .map(|m| m.behaviour_digest().unwrap_or(0))
            .collect();
        clapped_exec::StructDigest::new("accel::AcceleratorSpec")
            .field("image_size", &self.image_size)
            .field("window", &self.window)
            .field("stride", &self.stride)
            .field("downsample", &self.downsample)
            .field("mode", &mode)
            .field("taps", &taps)
            .finish()
    }

    /// Line-buffer storage in bits: the sliding window needs `window − 1`
    /// full image lines of 8-bit pixels (both separable passes share this
    /// requirement through the vertical pass).
    pub fn line_buffer_bits(&self) -> usize {
        (self.window - 1) * self.image_size * 8
    }

    /// Window/shift register bits.
    pub fn register_bits(&self) -> usize {
        match self.mode {
            ConvMode::TwoD => self.window * self.window * 8,
            ConvMode::Separable => 2 * self.window * 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapped_axops::Catalog;

    #[test]
    fn validation_catches_mistakes() {
        let cat = Catalog::standard();
        let m = cat.get("mul8s_exact").unwrap();
        let good = AcceleratorSpec::uniform_2d(32, 3, &m);
        assert!(good.validate().is_ok());

        let mut bad = good.clone();
        bad.window = 4;
        assert!(bad.validate().is_err());

        let mut bad = good.clone();
        bad.stride = 0;
        assert!(bad.validate().is_err());

        let mut bad = good.clone();
        bad.muls.pop();
        assert!(bad.validate().is_err());

        let mut bad = good.clone();
        bad.image_size = 2;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn tap_counts_by_mode() {
        let cat = Catalog::standard();
        let m = cat.get("mul8s_exact").unwrap();
        let mut spec = AcceleratorSpec::uniform_2d(32, 3, &m);
        assert_eq!(spec.taps(), 9);
        spec.mode = ConvMode::Separable;
        spec.muls = vec![m.clone(); 6];
        assert_eq!(spec.taps(), 6);
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn memory_scaling() {
        let cat = Catalog::standard();
        let m = cat.get("mul8s_exact").unwrap();
        let small = AcceleratorSpec::uniform_2d(32, 3, &m);
        let large = AcceleratorSpec::uniform_2d(128, 3, &m);
        assert!(large.line_buffer_bits() > small.line_buffer_bits());
        assert_eq!(small.register_bits(), 9 * 8);
    }
}
