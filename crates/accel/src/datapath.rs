//! Datapath netlist generation for convolution accelerators.

use crate::{AccelError, AcceleratorSpec, Result};
use clapped_exec::{Memo, MemoStats};
use clapped_imgproc::ConvMode;
use clapped_netlist::bus::{self, Bus};
use clapped_netlist::{Netlist, SignalId};
use std::sync::{Arc, OnceLock};

/// Builds the combinational datapath of the accelerator's processing
/// element: all tap multipliers, the sign-extended adder tree, the
/// normalization shift and the output clamp to `0..=127`.
///
/// Inputs are the window pixels (`px<i>[0..8]`) and the per-tap kernel
/// coefficients (`co<i>[0..8]`), so coefficient programmability is
/// preserved (the filter is runtime-loadable, matching an HLS design with
/// a coefficient array argument). The output is the 8-bit clamped pixel.
///
/// For the separable mode the datapath contains both the 1DH and the 1DV
/// processing elements.
///
/// # Errors
///
/// Returns [`crate::AccelError::BadSpec`] if the spec fails validation.
pub fn build_datapath(spec: &AcceleratorSpec, shift: u32) -> Result<Netlist> {
    spec.validate()?;
    let mut n = Netlist::new(format!(
        "accel_{}x{}_w{}_s{}{}",
        spec.image_size,
        spec.image_size,
        spec.window,
        spec.stride,
        if spec.downsample { "_ds" } else { "" }
    ));
    match spec.mode {
        ConvMode::TwoD => {
            let taps = spec.window * spec.window;
            let out = build_pe(&mut n, spec, 0, taps, shift, "")?;
            n.output_bus("pix_out", &out);
        }
        ConvMode::Separable => {
            let w = spec.window;
            // Two independent processing elements; the horizontal PE's
            // output would stream through the line buffer into the
            // vertical PE, so the combinational datapaths are disjoint.
            let h = build_pe(&mut n, spec, 0, w, shift, "h_")?;
            n.output_bus("pix_h", &h);
            let v = build_pe(&mut n, spec, w, w, shift, "v_")?;
            n.output_bus("pix_v", &v);
        }
    }
    Ok(n)
}

fn datapath_memo() -> &'static Memo<u64, Arc<Netlist>> {
    static MEMO: OnceLock<Memo<u64, Arc<Netlist>>> = OnceLock::new();
    MEMO.get_or_init(Memo::new)
}

/// [`build_datapath`] memoized process-wide by the
/// `(spec content digest, shift)` pair, mirroring the conv-plan LUT
/// memoization. Streaming simulation calls this once per frame, so a
/// steady-state stream pays for datapath generation exactly once per
/// distinct design point instead of once per frame.
///
/// # Errors
///
/// Returns [`crate::AccelError::BadSpec`] if the spec fails validation
/// (nothing is cached for failing specs).
pub fn build_datapath_cached(spec: &AcceleratorSpec, shift: u32) -> Result<Arc<Netlist>> {
    let key = clapped_exec::StructDigest::new("accel::datapath")
        .field("spec", &spec.content_digest())
        .field("shift", &u64::from(shift))
        .finish();
    if let Some(n) = datapath_memo().get(&key) {
        return Ok(n);
    }
    // Build outside the memo lock; a racing duplicate build is resolved
    // by keeping whichever entry lands first.
    let built = Arc::new(build_datapath(spec, shift)?);
    Ok(datapath_memo().insert_if_absent(key, built))
}

/// Hit/miss counters of the process-wide datapath memo — the cache-stats
/// hook proving a warm stream stops rebuilding datapaths.
pub fn datapath_cache_stats() -> MemoStats {
    datapath_memo().stats()
}

/// Builds one processing element using `count` taps starting at
/// `first_tap`; returns the clamped 8-bit output bus.
fn build_pe(
    n: &mut Netlist,
    spec: &AcceleratorSpec,
    first_tap: usize,
    count: usize,
    shift: u32,
    prefix: &str,
) -> Result<Bus> {
    let mut products: Vec<Bus> = Vec::with_capacity(count);
    for t in 0..count {
        let px = n.input_bus(&format!("{prefix}px{t}"), 8);
        let co = n.input_bus(&format!("{prefix}co{t}"), 8);
        let mut mul_inputs = px;
        mul_inputs.extend(co);
        let product = n.instantiate(spec.muls[first_tap + t].netlist(), &mul_inputs);
        products.push(product);
    }
    // Adder tree over sign-extended products.
    let acc_width = 16 + (usize::BITS - (count - 1).leading_zeros()) as usize;
    let mut level: Vec<Bus> = products
        .into_iter()
        .map(|p| bus::sign_extend(&p, acc_width))
        .collect();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut it = level.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => {
                    let (sum, _) = bus::ripple_carry_add(n, &a, &b, None);
                    next.push(sum);
                }
                None => next.push(a),
            }
        }
        level = next;
    }
    let acc = level
        .pop()
        .ok_or_else(|| AccelError::Synth(format!("{prefix}PE adder tree reduced to nothing")))?;
    // Normalization shift is free wiring: take bits [shift .. shift+8]
    // plus the bits above for clamping.
    let sh = shift as usize;
    let value: Bus = acc[sh..].to_vec();
    // Guarantee enough headroom bits for the clamp logic.
    let value = bus::sign_extend(&value, value.len().max(9));
    clamp_to_u7(n, &value)
}

/// Clamps a signed bus to `0..=127` and returns it as 8 bits
/// (`0vvvvvvv`).
fn clamp_to_u7(n: &mut Netlist, v: &[SignalId]) -> Result<Bus> {
    let sign = *v
        .last()
        .ok_or_else(|| AccelError::Synth("clamp input bus is empty".into()))?;
    // Overflow: any bit above the low 7 set while non-negative.
    let high_bits: Vec<SignalId> = v[7..v.len() - 1].to_vec();
    let any_high = n.or_reduce(&high_bits);
    let not_sign = n.not(sign);
    let saturate_high = n.and(not_sign, any_high);
    let mut out = Vec::with_capacity(8);
    for &bit in &v[..7] {
        // out bit = sign ? 0 : (saturate_high ? 1 : bit)
        let one_or_v = n.or(saturate_high, bit);
        let gated = n.and(not_sign, one_or_v);
        out.push(gated);
    }
    out.push(n.constant(false));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapped_axops::{Catalog, Mul8s};
    use clapped_netlist::pack_bus_samples;

    fn simulate_pe_2d(
        netlist: &Netlist,
        pixels: &[i8],
        coeffs: &[i8],
    ) -> i64 {
        // Interleave px/co buses in input declaration order.
        let mut words: Vec<u64> = Vec::new();
        for t in 0..pixels.len() {
            words.extend(pack_bus_samples(&[pixels[t] as i64], 8));
            words.extend(pack_bus_samples(&[coeffs[t] as i64], 8));
        }
        let outs = netlist.simulate_words(&words).unwrap();
        let mut v = 0i64;
        for (k, &w) in outs.iter().enumerate() {
            if w & 1 == 1 {
                v |= 1 << k;
            }
        }
        v
    }

    #[test]
    fn datapath_matches_software_pe() {
        let cat = Catalog::standard();
        let m = cat.get("mul8s_exact").unwrap();
        let spec = AcceleratorSpec::uniform_2d(8, 3, &m);
        let shift = 7u32;
        let n = build_datapath(&spec, shift).unwrap();
        let pixels: Vec<i8> = vec![10, 20, 30, 40, 50, 60, 70, 80, 90];
        let coeffs: Vec<i8> = vec![8, 16, 8, 16, 32, 16, 8, 16, 8];
        let got = simulate_pe_2d(&n, &pixels, &coeffs);
        let acc: i32 = pixels
            .iter()
            .zip(&coeffs)
            .map(|(&p, &c)| i32::from(m.mul(p, c)))
            .sum();
        let want = i64::from((acc >> shift).clamp(0, 127));
        assert_eq!(got, want);
    }

    #[test]
    fn clamp_saturates_high_and_low() {
        let cat = Catalog::standard();
        let m = cat.get("mul8s_exact").unwrap();
        let spec = AcceleratorSpec::uniform_2d(8, 3, &m);
        let n = build_datapath(&spec, 0).unwrap();
        // All products large positive: accumulate far above 127.
        let pixels = vec![127i8; 9];
        let coeffs = vec![127i8; 9];
        assert_eq!(simulate_pe_2d(&n, &pixels, &coeffs), 127);
        // Negative accumulate clamps to 0.
        let coeffs_neg = vec![-127i8; 9];
        assert_eq!(simulate_pe_2d(&n, &pixels, &coeffs_neg), 0);
    }

    #[test]
    fn separable_datapath_has_two_pes() {
        let cat = Catalog::standard();
        let m = cat.get("mul8s_exact").unwrap();
        let spec = AcceleratorSpec {
            mode: ConvMode::Separable,
            muls: vec![m.clone(); 6],
            ..AcceleratorSpec::uniform_2d(8, 3, &m)
        };
        let n = build_datapath(&spec, 5).unwrap();
        assert_eq!(n.outputs().len(), 16); // two 8-bit buses
        assert_eq!(n.inputs().len(), 96); // 2 PEs × 3 taps × (px + co) × 8 bits
    }

    #[test]
    fn mixed_multipliers_are_honoured() {
        let cat = Catalog::standard();
        let exact = cat.get("mul8s_exact").unwrap();
        let rough = cat.get("mul8s_tr5").unwrap();
        let mut spec = AcceleratorSpec::uniform_2d(8, 3, &exact);
        spec.muls[4] = rough.clone();
        let n = build_datapath(&spec, 7).unwrap();
        let pixels: Vec<i8> = vec![9; 9];
        let coeffs: Vec<i8> = vec![9; 9];
        let acc: i32 = (0..9)
            .map(|t| {
                let m: &dyn Mul8s = if t == 4 { rough.as_ref() } else { exact.as_ref() };
                i32::from(m.mul(9, 9))
            })
            .sum();
        let want = i64::from((acc >> 7).clamp(0, 127));
        assert_eq!(simulate_pe_2d(&n, &pixels, &coeffs), want);
    }
}
