//! True and compositional accelerator characterization.

use crate::{build_datapath, AccelError, AcceleratorSpec, Result};
use clapped_imgproc::ConvMode;
use clapped_netlist::{synthesize, SynthConfig, SynthReport};

/// Configuration of accelerator characterization.
#[derive(Debug, Clone, PartialEq)]
pub struct CharacterizeConfig {
    /// Synthesis flow parameters (LUT size, timing/power models).
    pub synth: SynthConfig,
    /// Normalization shift baked into the datapath (kernel dependent).
    pub shift: u32,
    /// Target clock in MHz; the effective clock is
    /// `min(target, fmax)`.
    pub target_clock_mhz: f64,
    /// Static+dynamic power charged per line-buffer BRAM kilobit, in
    /// milliwatts.
    pub bram_mw_per_kbit: f64,
    /// Power per window-register bit, in microwatts.
    pub reg_uw_per_bit: f64,
}

impl Default for CharacterizeConfig {
    fn default() -> Self {
        CharacterizeConfig {
            synth: SynthConfig {
                // The datapath is verified once per operator in axops;
                // skip re-verification here for speed (can be re-enabled).
                verify_rounds: 0,
                ..SynthConfig::default()
            },
            shift: 8,
            target_clock_mhz: 250.0,
            bram_mw_per_kbit: 0.08,
            reg_uw_per_bit: 0.6,
        }
    }
}

/// Full performance characterization of one accelerator design point —
/// the record a Vivado run would produce.
#[derive(Debug, Clone, PartialEq)]
pub struct AccelReport {
    /// LUT count of the datapath.
    pub luts: usize,
    /// Critical path delay in nanoseconds.
    pub cpd_ns: f64,
    /// Maximum clock frequency in MHz.
    pub fmax_mhz: f64,
    /// Effective clock (min of target and fmax) in MHz.
    pub clock_mhz: f64,
    /// Total power (logic + signal + static + memory) in milliwatts.
    pub total_power_mw: f64,
    /// Dynamic logic power in milliwatts.
    pub logic_power_mw: f64,
    /// Dynamic signal (routing) power in milliwatts.
    pub signal_power_mw: f64,
    /// Cycles to process one full image.
    pub latency_cycles: u64,
    /// Power-delay product in picojoules (`total power × CPD`).
    pub pdp_pj: f64,
    /// Energy to process one image, in microjoules.
    pub energy_per_image_uj: f64,
}

impl AccelReport {
    /// Image processing time in microseconds at the effective clock.
    pub fn image_time_us(&self) -> f64 {
        self.latency_cycles as f64 / self.clock_mhz
    }

    /// Throughput in images per second.
    pub fn images_per_second(&self) -> f64 {
        1e6 / self.image_time_us()
    }
}

/// Cycle-count model of the line-buffer sliding-window accelerator.
///
/// The accelerator is **input-stream bound**: it consumes one pixel per
/// cycle, so processing an image costs the line-buffer fill plus one
/// cycle per input pixel regardless of stride — striding skips
/// *computations* (reducing switching activity, see
/// [`compute_duty_factor`]), not input cycles. This matches the paper's
/// observation that latency depends primarily on the image size
/// (Table I's latency model uses image size only).
///
/// - 2D: `(W−1)·N + W` fill + `N²` streaming cycles.
/// - Separable: a horizontal pass over the input and a vertical pass
///   over its (possibly width-reduced) output.
pub fn latency_cycles(spec: &AcceleratorSpec) -> u64 {
    let n = spec.image_size as u64;
    let w = spec.window as u64;
    let s = spec.stride as u64;
    match spec.mode {
        ConvMode::TwoD => (w - 1) * n + w + n * n,
        ConvMode::Separable => {
            // Pass 1 streams the full input; with downsampling its output
            // is width-reduced, shrinking pass 2's stream.
            let n1x = if spec.downsample { n.div_ceil(s) } else { n };
            let pass1 = w + n * n;
            let pass2 = (w - 1) * n1x + w + n1x * n;
            pass1 + pass2
        }
    }
}

/// Fraction of streaming cycles in which the multiplier array actually
/// computes: striding by `s` fires the window only on the stride grid
/// (`1/s²` for 2D; `1/s` per pass for the separable pair). Dynamic
/// datapath power scales with this duty factor.
pub fn compute_duty_factor(spec: &AcceleratorSpec) -> f64 {
    let s = spec.stride as f64;
    match spec.mode {
        ConvMode::TwoD => 1.0 / (s * s),
        ConvMode::Separable => 1.0 / s,
    }
}

/// **True** characterization: synthesizes the full datapath netlist
/// through the LUT-mapping flow and combines it with the memory and
/// latency models.
///
/// This is the slow, accurate estimation path (the paper's Vivado runs);
/// the ML predictors in [`crate::features`] are trained to replace it.
///
/// # Errors
///
/// Returns [`AccelError::BadSpec`] for invalid specs and
/// [`AccelError::Synth`] if the synthesis flow fails.
pub fn characterize(spec: &AcceleratorSpec, config: &CharacterizeConfig) -> Result<AccelReport> {
    let datapath = build_datapath(spec, config.shift)?;
    let synth = synthesize(&datapath, &config.synth).map_err(|e| AccelError::Synth(e.to_string()))?;
    Ok(assemble_report(spec, config, &synth))
}

/// Fast compositional estimate: sums the per-operator synthesis reports
/// plus an analytic adder-tree/clamp estimate instead of synthesizing the
/// composed datapath. Within ~15 % of [`characterize`] for typical
/// designs, at a fraction of the cost.
///
/// # Errors
///
/// Returns [`AccelError::BadSpec`] for invalid specs and
/// [`AccelError::Synth`] if an operator fails to synthesize.
pub fn characterize_fast(
    spec: &AcceleratorSpec,
    config: &CharacterizeConfig,
    op_reports: &dyn Fn(&str) -> Option<SynthReport>,
) -> Result<AccelReport> {
    spec.validate()?;
    let mut luts = 0usize;
    let mut cpd = 0.0f64;
    let mut logic = 0.0f64;
    let mut signal = 0.0f64;
    let mut statics = 0.0f64;
    for m in &spec.muls {
        let r = op_reports(clapped_axops::Mul8s::name(m.as_ref())).ok_or_else(|| {
            AccelError::Synth(format!(
                "no synthesis report for operator {}",
                clapped_axops::Mul8s::name(m.as_ref())
            ))
        })?;
        luts += r.lut_count;
        cpd = cpd.max(r.cpd_ns);
        logic += r.power.logic_mw;
        signal += r.power.signal_mw;
        statics += r.power.static_mw;
    }
    // Adder tree: taps−1 adders of ~20 bits, ≈ 20 LUTs each (carry
    // logic), log2(taps) levels of delay.
    let taps = spec.taps();
    let tree_luts = (taps - 1) * 20 + 16;
    let tree_levels = (usize::BITS - (taps - 1).leading_zeros()) as f64;
    luts += tree_luts;
    cpd += tree_levels * (config.synth.timing.lut_delay_ns + config.synth.timing.net_delay_ns) * 4.0;
    // Deduplicate the per-operator base static power (device-level, paid
    // once).
    let base = config.synth.power.static_base_mw;
    statics = base + (statics - base * spec.muls.len() as f64).max(0.0)
        + tree_luts as f64 * config.synth.power.static_uw_per_lut / 1000.0;
    let synth_like = SyntheticTotals {
        luts,
        cpd_ns: cpd,
        logic_mw: logic,
        signal_mw: signal,
        static_mw: statics,
    };
    Ok(assemble_from_totals(spec, config, &synth_like))
}

struct SyntheticTotals {
    luts: usize,
    cpd_ns: f64,
    logic_mw: f64,
    signal_mw: f64,
    static_mw: f64,
}

fn assemble_report(
    spec: &AcceleratorSpec,
    config: &CharacterizeConfig,
    synth: &SynthReport,
) -> AccelReport {
    let totals = SyntheticTotals {
        luts: synth.lut_count,
        cpd_ns: synth.cpd_ns,
        logic_mw: synth.power.logic_mw,
        signal_mw: synth.power.signal_mw,
        static_mw: synth.power.static_mw,
    };
    assemble_from_totals(spec, config, &totals)
}

fn assemble_from_totals(
    spec: &AcceleratorSpec,
    config: &CharacterizeConfig,
    totals: &SyntheticTotals,
) -> AccelReport {
    let fmax = 1000.0 / totals.cpd_ns;
    let clock = config.target_clock_mhz.min(fmax);
    // Memory subsystem power.
    let bram_mw = spec.line_buffer_bits() as f64 / 1024.0 * config.bram_mw_per_kbit;
    let reg_mw = spec.register_bits() as f64 * config.reg_uw_per_bit / 1000.0;
    // Dynamic power scales with the effective clock relative to the
    // power model's reference clock, and with the compute duty factor
    // (strided designs gate their multiplier array off-grid).
    let duty = compute_duty_factor(spec);
    let clock_ratio = clock / config.synth.power.clock_mhz;
    let logic = totals.logic_mw * clock_ratio * duty;
    let signal = totals.signal_mw * clock_ratio * duty;
    // Output writeback power scales with the written pixel count per
    // streamed cycle — downsampling's (small) power win.
    let s = spec.stride as f64;
    let write_ratio = if spec.downsample { 1.0 / (s * s) } else { 1.0 };
    let write_mw = 0.02 * spec.image_size as f64 * write_ratio / 32.0;
    let total = logic + signal + totals.static_mw + bram_mw + reg_mw + write_mw;
    let latency = latency_cycles(spec);
    let energy_uj = total * 1e-3 * latency as f64 * (1.0 / clock) * 1e-6 * 1e6;
    AccelReport {
        luts: totals.luts,
        cpd_ns: totals.cpd_ns,
        fmax_mhz: fmax,
        clock_mhz: clock,
        total_power_mw: total,
        logic_power_mw: logic,
        signal_power_mw: signal,
        latency_cycles: latency,
        pdp_pj: total * totals.cpd_ns,
        energy_per_image_uj: energy_uj,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapped_axops::Catalog;
    use clapped_netlist::synthesize;
    use std::collections::HashMap;

    #[test]
    fn latency_model_shapes() {
        let cat = Catalog::standard();
        let m = cat.get("mul8s_exact").unwrap();
        let base = AcceleratorSpec::uniform_2d(64, 3, &m);
        let l_base = latency_cycles(&base);
        // Bigger images take longer.
        let big = AcceleratorSpec::uniform_2d(128, 3, &m);
        assert!(latency_cycles(&big) > l_base);
        // The 2D accelerator is input-stream bound: striding does not
        // change its latency (the paper's latency-vs-image-size claim).
        let ds = AcceleratorSpec {
            stride: 2,
            downsample: true,
            ..base.clone()
        };
        assert_eq!(latency_cycles(&ds), l_base);
        // But it does cut the compute duty factor.
        assert!((compute_duty_factor(&ds) - 0.25).abs() < 1e-12);
        assert!((compute_duty_factor(&base) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn strided_designs_use_less_energy() {
        let cat = Catalog::standard();
        let m = cat.get("mul8s_exact").unwrap();
        let cfg = CharacterizeConfig::default();
        let base = characterize(&AcceleratorSpec::uniform_2d(64, 3, &m), &cfg).unwrap();
        let strided = characterize(
            &AcceleratorSpec {
                stride: 2,
                downsample: true,
                ..AcceleratorSpec::uniform_2d(64, 3, &m)
            },
            &cfg,
        )
        .unwrap();
        assert!(strided.total_power_mw < base.total_power_mw);
        assert!(strided.energy_per_image_uj < base.energy_per_image_uj);
        assert_eq!(strided.latency_cycles, base.latency_cycles);
    }

    #[test]
    fn true_characterization_is_sane() {
        let cat = Catalog::standard();
        let m = cat.get("mul8s_tr4").unwrap();
        let spec = AcceleratorSpec::uniform_2d(32, 3, &m);
        let r = characterize(&spec, &CharacterizeConfig::default()).unwrap();
        assert!(r.luts > 100, "9 multipliers + tree, got {} LUTs", r.luts);
        assert!(r.cpd_ns > 1.0);
        assert!(r.total_power_mw > 0.0);
        assert!(r.pdp_pj > 0.0);
        assert!(r.energy_per_image_uj > 0.0);
        assert!(r.clock_mhz <= 250.0);
    }

    #[test]
    fn approximate_datapaths_are_cheaper() {
        let cat = Catalog::standard();
        let cfg = CharacterizeConfig::default();
        let exact = characterize(
            &AcceleratorSpec::uniform_2d(32, 3, &cat.get("mul8s_exact").unwrap()),
            &cfg,
        )
        .unwrap();
        let approx = characterize(
            &AcceleratorSpec::uniform_2d(32, 3, &cat.get("mul8s_bam_v8_h3").unwrap()),
            &cfg,
        )
        .unwrap();
        assert!(approx.luts < exact.luts, "{} vs {}", approx.luts, exact.luts);
        assert!(approx.energy_per_image_uj < exact.energy_per_image_uj);
    }

    #[test]
    fn fast_estimate_tracks_true_characterization() {
        let cat = Catalog::standard();
        let cfg = CharacterizeConfig::default();
        // Pre-synthesize operator reports.
        let mut reports = HashMap::new();
        for name in ["mul8s_exact", "mul8s_tr4"] {
            let m = cat.get(name).unwrap();
            let r = synthesize(m.netlist(), &cfg.synth).unwrap();
            reports.insert(name.to_string(), r);
        }
        let m = cat.get("mul8s_tr4").unwrap();
        let spec = AcceleratorSpec::uniform_2d(32, 3, &m);
        let fast = characterize_fast(&spec, &cfg, &|n| reports.get(n).cloned()).unwrap();
        let truth = characterize(&spec, &cfg).unwrap();
        let rel = (fast.luts as f64 - truth.luts as f64).abs() / truth.luts as f64;
        assert!(rel < 0.5, "fast {} vs true {} LUTs", fast.luts, truth.luts);
        assert_eq!(fast.latency_cycles, truth.latency_cycles);
    }

    #[test]
    fn separable_uses_fewer_luts_than_2d() {
        let cat = Catalog::standard();
        let m = cat.get("mul8s_exact").unwrap();
        let cfg = CharacterizeConfig::default();
        let two_d = characterize(&AcceleratorSpec::uniform_2d(32, 3, &m), &cfg).unwrap();
        let sep_spec = AcceleratorSpec {
            mode: ConvMode::Separable,
            muls: vec![m.clone(); 6],
            ..AcceleratorSpec::uniform_2d(32, 3, &m)
        };
        let sep = characterize(&sep_spec, &cfg).unwrap();
        assert!(sep.luts < two_d.luts, "sep {} vs 2d {}", sep.luts, two_d.luts);
    }
}
