//! ML feature extraction for accelerator performance prediction —
//! the paper's Table I.
//!
//! Two representations are compared in the paper's Fig. 11:
//!
//! - **IDX**: each tap multiplier contributes only its catalog index,
//! - **EXP** (expanded): each metric's model consumes the accelerator
//!   dimensions plus physically meaningful per-operator characteristics
//!   (Table I): CPD and total power for PDP, LUT counts for LUTs, none
//!   for latency, signal/logic power for power dissipation.

use crate::{AccelError, AcceleratorSpec, Result};
use clapped_axops::{Catalog, Mul8s};
use clapped_netlist::{synthesize, SynthConfig};
use std::collections::HashMap;

/// Per-operator synthesis characteristics used as EXP features.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MulProps {
    /// LUT count of the bare operator.
    pub luts: f64,
    /// Critical path delay in ns.
    pub cpd_ns: f64,
    /// Total power in mW (at the flow's reference clock).
    pub total_power_mw: f64,
    /// Dynamic signal power in mW.
    pub signal_power_mw: f64,
    /// Dynamic logic power in mW.
    pub logic_power_mw: f64,
}

/// A characterized operator library: per-operator properties plus the
/// catalog indices, feeding both feature representations.
#[derive(Debug, Clone)]
pub struct OpLibrary {
    props: HashMap<String, MulProps>,
    indices: HashMap<String, usize>,
}

impl OpLibrary {
    /// Synthesizes every catalog operator once and records its
    /// properties.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::Synth`] if an operator fails the flow.
    pub fn characterize(catalog: &Catalog, synth: &SynthConfig) -> Result<OpLibrary> {
        let mut props = HashMap::new();
        let mut indices = HashMap::new();
        for (i, m) in catalog.iter().enumerate() {
            let r = synthesize(m.netlist(), synth)
                .map_err(|e| AccelError::Synth(format!("{}: {e}", m.name())))?;
            props.insert(
                m.name().to_string(),
                MulProps {
                    luts: r.lut_count as f64,
                    cpd_ns: r.cpd_ns,
                    total_power_mw: r.power.total_mw(),
                    signal_power_mw: r.power.signal_mw,
                    logic_power_mw: r.power.logic_mw,
                },
            );
            indices.insert(m.name().to_string(), i);
        }
        Ok(OpLibrary { props, indices })
    }

    /// Properties of a named operator.
    pub fn props(&self, name: &str) -> Option<&MulProps> {
        self.props.get(name)
    }

    /// Catalog index of a named operator.
    pub fn index(&self, name: &str) -> Option<usize> {
        self.indices.get(name).copied()
    }

    /// Number of characterized operators.
    pub fn len(&self) -> usize {
        self.props.len()
    }

    /// True when the library is empty.
    pub fn is_empty(&self) -> bool {
        self.props.is_empty()
    }
}

/// The accelerator performance metrics modelled in the paper's Fig. 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PerfMetric {
    /// Power-delay product.
    Pdp,
    /// LUT utilization.
    Luts,
    /// Image-processing latency in cycles.
    Latency,
    /// Total power dissipation.
    Power,
}

impl PerfMetric {
    /// All four metrics.
    pub const ALL: [PerfMetric; 4] = [
        PerfMetric::Pdp,
        PerfMetric::Luts,
        PerfMetric::Latency,
        PerfMetric::Power,
    ];

    /// Metric name as printed in reports.
    pub fn name(self) -> &'static str {
        match self {
            PerfMetric::Pdp => "PDP",
            PerfMetric::Luts => "LUTs",
            PerfMetric::Latency => "Latency",
            PerfMetric::Power => "Power",
        }
    }
}

/// Feature representation mode (paper Fig. 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeatureMode {
    /// Multipliers appear as bare catalog indices.
    Idx,
    /// Expanded Table-I features per metric.
    Exp,
}

/// Extracts the feature vector of a design point for one metric under
/// one representation.
///
/// # Errors
///
/// Returns [`AccelError::Synth`] if an operator of the spec is missing
/// from the library.
pub fn features(
    spec: &AcceleratorSpec,
    metric: PerfMetric,
    mode: FeatureMode,
    lib: &OpLibrary,
) -> Result<Vec<f64>> {
    spec.validate()?;
    let accel_dims = |with_stride: bool| -> Vec<f64> {
        let mut v = vec![spec.image_size as f64];
        if with_stride {
            v.push(spec.stride as f64);
            v.push(if spec.downsample { 1.0 } else { 0.0 });
        }
        v
    };
    let mut mul_props = Vec::with_capacity(spec.muls.len());
    for m in &spec.muls {
        let name = Mul8s::name(m.as_ref());
        let p = lib
            .props(name)
            .ok_or_else(|| AccelError::Synth(format!("operator {name} not in library")))?;
        let idx = lib
            .index(name)
            .ok_or_else(|| AccelError::Synth(format!("operator {name} not in library")))?;
        mul_props.push((idx, *p));
    }
    let feats = match mode {
        FeatureMode::Idx => {
            // Image dims + one index per tap.
            let mut v = accel_dims(true);
            v.extend(mul_props.iter().map(|(i, _)| *i as f64));
            v
        }
        FeatureMode::Exp => match metric {
            PerfMetric::Pdp => {
                let mut v = accel_dims(true);
                v.extend(mul_props.iter().map(|(_, p)| p.cpd_ns));
                v.extend(mul_props.iter().map(|(_, p)| p.total_power_mw));
                v
            }
            PerfMetric::Luts => {
                let mut v = accel_dims(true);
                v.extend(mul_props.iter().map(|(_, p)| p.luts));
                v
            }
            PerfMetric::Latency => accel_dims(false),
            PerfMetric::Power => {
                let mut v = accel_dims(true);
                v.extend(mul_props.iter().map(|(_, p)| p.signal_power_mw));
                v.extend(mul_props.iter().map(|(_, p)| p.logic_power_mw));
                v
            }
        },
    };
    Ok(feats)
}

/// Prints the Table-I style dimension summary for the EXP models.
pub fn table1_rows() -> Vec<(&'static str, &'static str, &'static str)> {
    vec![
        (
            "PDP",
            "Image Size, Stridelength, Downsampling",
            "Critical Path Delay, Total Power Dissipation",
        ),
        (
            "LUTs",
            "Image Size, Stridelength, Downsampling",
            "LUT Utilization",
        ),
        ("Latency", "Image Size", "-"),
        (
            "Power Dissipation",
            "Image Size, Stridelength, Downsampling",
            "Signal Power, Logic Power",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapped_axops::Catalog;

    fn small_library(cat: &Catalog) -> OpLibrary {
        // Characterizing the full catalog is slow in debug; restrict to a
        // couple of operators by building a reduced catalog.
        let reduced = Catalog::from_specs(vec![
            ("mul8s_exact".to_string(), clapped_axops::MulArch::Exact),
            (
                "mul8s_tr4".to_string(),
                clapped_axops::MulArch::Truncated { k: 4 },
            ),
        ])
        .expect("unique names");
        let _ = cat;
        OpLibrary::characterize(&reduced, &SynthConfig {
            verify_rounds: 0,
            ..SynthConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn feature_shapes_match_table1() {
        let cat = Catalog::standard();
        let lib = small_library(&cat);
        let m = cat.get("mul8s_tr4").unwrap();
        let spec = AcceleratorSpec::uniform_2d(32, 3, &m);
        let f_pdp = features(&spec, PerfMetric::Pdp, FeatureMode::Exp, &lib).unwrap();
        assert_eq!(f_pdp.len(), 3 + 9 + 9);
        let f_luts = features(&spec, PerfMetric::Luts, FeatureMode::Exp, &lib).unwrap();
        assert_eq!(f_luts.len(), 3 + 9);
        let f_lat = features(&spec, PerfMetric::Latency, FeatureMode::Exp, &lib).unwrap();
        assert_eq!(f_lat.len(), 1);
        let f_pow = features(&spec, PerfMetric::Power, FeatureMode::Exp, &lib).unwrap();
        assert_eq!(f_pow.len(), 3 + 18);
        let f_idx = features(&spec, PerfMetric::Pdp, FeatureMode::Idx, &lib).unwrap();
        assert_eq!(f_idx.len(), 3 + 9);
    }

    #[test]
    fn exp_features_reflect_operator_cost() {
        let cat = Catalog::standard();
        let lib = small_library(&cat);
        let exact = cat.get("mul8s_exact").unwrap();
        let rough = cat.get("mul8s_tr4").unwrap();
        let s_exact = AcceleratorSpec::uniform_2d(32, 3, &exact);
        let s_rough = AcceleratorSpec::uniform_2d(32, 3, &rough);
        let f_e = features(&s_exact, PerfMetric::Luts, FeatureMode::Exp, &lib).unwrap();
        let f_r = features(&s_rough, PerfMetric::Luts, FeatureMode::Exp, &lib).unwrap();
        // LUT features of the rough design must be strictly smaller.
        assert!(f_r[3] < f_e[3]);
    }

    #[test]
    fn unknown_operator_is_reported() {
        let cat = Catalog::standard();
        let lib = small_library(&cat);
        let m = cat.get("mul8s_log").unwrap(); // not in the reduced library
        let spec = AcceleratorSpec::uniform_2d(32, 3, &m);
        assert!(features(&spec, PerfMetric::Luts, FeatureMode::Exp, &lib).is_err());
    }

    #[test]
    fn table1_has_four_rows() {
        assert_eq!(table1_rows().len(), 4);
    }
}
