//! Static analysis for the CLAppED workspace.
//!
//! Two analysis targets, both run as a CI gate (`clapped_lint --deny`)
//! and under `cargo test`:
//!
//! 1. **Source lints** ([`rules`], [`layering`]): lexical rules over the
//!    workspace's own Rust sources enforcing its determinism and
//!    robustness contract — no hash-ordered iteration near digests, no
//!    wall-clock outside `clapped-obs`, no entropy-seeded RNGs, no
//!    panicking shortcuts in library code — plus crate-layering checks
//!    derived from each `Cargo.toml`. Escape hatch:
//!    `// lint-allow(rule): reason`.
//! 2. **Netlist structural lints** ([`netlists`], re-exported from
//!    `clapped_netlist::lint`): every catalog operator's gate netlist is
//!    checked for dangling fanins, combinational cycles, multiply-bound
//!    ports, dead logic and const-tied outputs — raw *and* after
//!    `opt::optimize`, where surviving dead gates escalate to errors.
//! 3. **Error-bound soundness gate** ([`errbounds`]): every catalog
//!    operator's statically *proved* error bounds
//!    (`clapped_netlist::errbound`) are cross-checked against its
//!    exhaustive behavioural table — a proved worst-case error below an
//!    observed error, or an exact-tier count disagreeing with the
//!    table, fails the gate.
//!
//! The crate is intentionally dependency-light: the source scanner is a
//! few hundred lines of hand-rolled lexer (the rustc-`tidy` approach),
//! not a parser library.

pub mod errbounds;
pub mod layering;
pub mod netlists;
pub mod rules;
pub mod source;

pub use clapped_netlist::{lint_netlist, live_cone, StructFinding, StructReport, StructSeverity};

use source::SourceFile;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// One source-level finding. All source findings are deny-worthy: the
/// tolerated exceptions live in allow comments, not in a severity tier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (e.g. `hash-containers`).
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line number (0 for file-level findings).
    pub line: usize,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.message)
    }
}

/// Recursively collects `*.rs` files under `dir`, appending
/// workspace-relative paths to `out`.
fn walk_rs(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        // Missing subtrees (a crate without benches/) are fine.
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e),
    };
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        paths.push(entry?.path());
    }
    // Deterministic traversal regardless of directory-entry order.
    paths.sort();
    for p in paths {
        if p.is_dir() {
            walk_rs(root, &p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p.strip_prefix(root).unwrap_or(&p).to_path_buf());
        }
    }
    Ok(())
}

/// Lists every workspace-owned Rust source file (workspace-relative,
/// `/`-separated): `crates/*/{src,tests,benches,examples}` plus the
/// facade's `src/`. `vendor/` and `target/` are never entered.
///
/// # Errors
///
/// Propagates filesystem errors other than missing subtrees.
pub fn workspace_sources(root: &Path) -> io::Result<Vec<String>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    for entry in std::fs::read_dir(&crates_dir)? {
        let p = entry?.path();
        if p.is_dir() {
            crate_dirs.push(p);
        }
    }
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        for sub in ["src", "tests", "benches", "examples"] {
            walk_rs(root, &crate_dir.join(sub), &mut files)?;
        }
    }
    walk_rs(root, &root.join("src"), &mut files)?;
    Ok(files
        .into_iter()
        .map(|p| {
            p.components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/")
        })
        .collect())
}

/// Runs every source rule over every workspace source file plus the
/// layering check, returning all findings sorted by path then line.
///
/// # Errors
///
/// Propagates filesystem errors from reading sources or manifests.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for rel in workspace_sources(root)? {
        let content = std::fs::read_to_string(root.join(&rel))?;
        findings.extend(rules::lint_file(&SourceFile::scan(rel, &content)));
    }
    findings.extend(layering::lint_layering(root)?);
    findings.sort_by(|a, b| a.path.cmp(&b.path).then(a.line.cmp(&b.line)));
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("repo root")
    }

    #[test]
    fn workspace_sources_finds_known_files() {
        let files = workspace_sources(&repo_root()).expect("walk");
        assert!(files.iter().any(|f| f == "crates/netlist/src/ir.rs"), "{files:?}");
        assert!(files.iter().any(|f| f == "crates/lint/src/lib.rs"));
        assert!(files.iter().any(|f| f == "src/lib.rs"), "facade src included");
        assert!(files.iter().all(|f| !f.starts_with("vendor/")), "vendor never entered");
        assert!(files.iter().all(|f| !f.starts_with("target/")));
        // Deterministic order.
        let again = workspace_sources(&repo_root()).expect("walk");
        assert_eq!(files, again);
    }

    /// The gate itself: the workspace must be lint-clean. This is the
    /// same check CI runs via `clapped_lint --deny`.
    #[test]
    fn workspace_is_lint_clean() {
        let findings = lint_workspace(&repo_root()).expect("lint");
        assert!(
            findings.is_empty(),
            "workspace has lint findings:\n{}",
            findings.iter().map(|f| format!("  {f}\n")).collect::<String>()
        );
    }
}
