//! The source-rule catalog and the allowlist machinery.
//!
//! Every rule is lexical (word-boundary token matching over the
//! comment/string-blanked code mask from [`crate::source`]) and scoped
//! by workspace-relative path. The catalog encodes this workspace's
//! determinism and robustness contract:
//!
//! | rule | forbids | where |
//! |------|---------|-------|
//! | `hash-containers` | `HashMap`/`HashSet` | digest/serialization-adjacent crates |
//! | `wall-clock` | `Instant`/`SystemTime` | everywhere except `obs` and `bench` |
//! | `entropy-rng` | `thread_rng`, `from_entropy`, `OsRng`, … | everywhere, tests included |
//! | `partial-cmp-sort` | `partial_cmp` inside a sort/ordering call | everywhere |
//! | `no-unwrap` | `.unwrap()` | library code |
//! | `no-expect` | `.expect(` | panic-free layers (exec, obs, runtime, serve, accel, checkpoint, gen catalog, prefilter, errbound analyzer + gate) |
//! | `no-print` | `println!` & friends | library code except `bench` |
//! | `todo-markers` | `todo!`, `unimplemented!` | everywhere |
//! | `cfg-test-mod` | `mod tests` without `#[cfg(test)]` | library code |
//! | `no-silent-truncation` | `as u8`/`as i16`-style casts to ≤32-bit ints | digest/table-adjacent code (netlist, exec, axops table) |
//!
//! Suppression: `// lint-allow(rule): reason` on the offending line or
//! the line directly above silences exactly that line;
//! `// lint-allow-file(rule): reason` within the first 40 lines
//! silences the whole file. The reason is mandatory, and an allow that
//! suppresses nothing is itself reported (`unused-allow`), so the
//! allowlist can only shrink the finding set it actually explains.

use crate::source::SourceFile;
use crate::Finding;

/// How many leading lines may carry a `lint-allow-file` comment.
const FILE_ALLOW_WINDOW: usize = 40;

/// True if `line[..]` contains `token` delimited by non-identifier
/// characters on both sides.
fn has_word(line: &str, token: &str) -> bool {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find(token) {
        let start = from + pos;
        let end = start + token.len();
        let pre_ok = start == 0 || !is_ident(bytes[start - 1]);
        let post_ok = end >= bytes.len() || !is_ident(bytes[end]);
        if pre_ok && post_ok {
            return true;
        }
        from = end;
    }
    false
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn is_src_lib(path: &str) -> bool {
    path.contains("/src/") && !path.contains("/src/bin/")
}

/// One source rule: an id, a path scope, and a per-line matcher.
struct Rule {
    id: &'static str,
    /// Whether the rule runs on this file at all.
    applies: fn(&str) -> bool,
    /// Whether `#[cfg(test)]` regions are exempt.
    skip_tests: bool,
    /// Returns a message when the (code-mask) line violates the rule.
    check: fn(&str) -> Option<String>,
}

/// Paths whose `HashMap`/`HashSet` iteration could leak per-process
/// hash-seed order into digests, checkpoints or serialized artifacts.
fn hash_scope(path: &str) -> bool {
    (path.starts_with("crates/exec/src/")
        || path.starts_with("crates/netlist/src/")
        || path.starts_with("crates/obs/src/")
        || path == "crates/dse/src/checkpoint.rs"
        || path == "crates/axops/src/table.rs"
        || path == "crates/axops/src/fault.rs")
        && is_src_lib(path)
}

fn rules() -> Vec<Rule> {
    vec![
        Rule {
            id: "hash-containers",
            applies: hash_scope,
            skip_tests: true,
            check: |code| {
                // Importing is not the hazard; every usage site is.
                if code.trim_start().starts_with("use ") {
                    return None;
                }
                for t in ["HashMap", "HashSet"] {
                    if has_word(code, t) {
                        return Some(format!(
                            "`{t}` in digest/serialization-adjacent code: iteration order is \
                             per-process random; use BTreeMap/BTreeSet or sort explicitly"
                        ));
                    }
                }
                None
            },
        },
        Rule {
            id: "wall-clock",
            applies: |p| {
                is_src_lib(p)
                    && !p.starts_with("crates/obs/")
                    && !p.starts_with("crates/bench/")
                    && !p.starts_with("crates/lint/")
            },
            skip_tests: true,
            check: |code| {
                for t in ["Instant", "SystemTime"] {
                    if has_word(code, t) {
                        return Some(format!(
                            "`{t}` outside clapped-obs: wall-clock reads are confined to the \
                             obs crate; use clapped_obs::Stopwatch / Deadline"
                        ));
                    }
                }
                None
            },
        },
        Rule {
            id: "entropy-rng",
            applies: |_| true,
            skip_tests: false,
            check: |code| {
                for t in ["thread_rng", "from_entropy", "OsRng", "getrandom"] {
                    if has_word(code, t) {
                        return Some(format!(
                            "`{t}` draws OS entropy: every RNG must be explicitly seeded \
                             (ChaCha8Rng::seed_from_u64) so runs are reproducible"
                        ));
                    }
                }
                if code.contains("rand::random") {
                    return Some(String::from(
                        "`rand::random` uses the thread-local entropy RNG; seed explicitly",
                    ));
                }
                None
            },
        },
        Rule {
            id: "partial-cmp-sort",
            applies: |_| true,
            skip_tests: false,
            // Matching handled specially in `lint_file` (needs a
            // multi-line window: the closure body often wraps).
            check: |_| None,
        },
        Rule {
            id: "no-unwrap",
            applies: is_src_lib,
            skip_tests: true,
            check: |code| {
                code.contains(".unwrap()").then(|| {
                    String::from(
                        "`.unwrap()` in library code: return a Result, use a total method, \
                         or prove infallibility with a match",
                    )
                })
            },
        },
        Rule {
            id: "no-expect",
            applies: |p| {
                (p.starts_with("crates/exec/src/")
                    || p.starts_with("crates/obs/src/")
                    || p.starts_with("crates/runtime/src/")
                    || p.starts_with("crates/serve/src/")
                    || p.starts_with("crates/accel/src/")
                    || p == "crates/dse/src/checkpoint.rs"
                    || p == "crates/axops/src/gen.rs"
                    || p == "crates/core/src/prefilter.rs"
                    || p == "crates/netlist/src/errbound.rs"
                    || p == "crates/lint/src/errbounds.rs")
                    && is_src_lib(p)
            },
            skip_tests: true,
            check: |code| {
                code.contains(".expect(").then(|| {
                    String::from(
                        "`.expect(` in a panic-free layer: engine/observability/checkpoint \
                         code must degrade, not abort (poisoned locks recover via \
                         PoisonError::into_inner)",
                    )
                })
            },
        },
        Rule {
            id: "no-print",
            applies: |p| is_src_lib(p) && !p.starts_with("crates/bench/"),
            skip_tests: true,
            check: |code| {
                for t in ["println!", "eprintln!", "print!", "eprint!", "dbg!"] {
                    if code.contains(t) {
                        return Some(format!(
                            "`{t}` in library code: route output through clapped-obs or \
                             return it to the caller"
                        ));
                    }
                }
                None
            },
        },
        Rule {
            id: "todo-markers",
            applies: |_| true,
            skip_tests: false,
            check: |code| {
                for t in ["todo!", "unimplemented!"] {
                    if code.contains(t) {
                        return Some(format!("`{t}` must not land on the main branch"));
                    }
                }
                None
            },
        },
        Rule {
            id: "cfg-test-mod",
            applies: is_src_lib,
            skip_tests: false,
            // Matching handled specially in `lint_file` (needs region info).
            check: |_| None,
        },
        Rule {
            id: "no-silent-truncation",
            applies: |p| {
                (p.starts_with("crates/netlist/src/")
                    || p.starts_with("crates/exec/src/")
                    || p == "crates/axops/src/table.rs")
                    && is_src_lib(p)
            },
            skip_tests: true,
            check: |code| {
                // Lexical approximation: any `as` cast to a ≤32-bit
                // integer can drop bits when the source is wider.
                // Provable widenings still need the annotation — the
                // reason documents why the cast is lossless.
                for t in ["as u8", "as i8", "as u16", "as i16", "as u32", "as i32"] {
                    if has_word(code, t) {
                        return Some(format!(
                            "`{t}` in digest/table-adjacent code may silently truncate: \
                             use `try_from`/`From`, or justify losslessness with a \
                             lint-allow"
                        ));
                    }
                }
                None
            },
        },
    ]
}

/// A parsed allow comment.
struct Allow {
    rule: String,
    line: usize,
    file_level: bool,
    reason_ok: bool,
    used: bool,
}

fn parse_allows(file: &SourceFile) -> Vec<Allow> {
    let mut allows = Vec::new();
    for (i, comment) in file.comment_lines.iter().enumerate() {
        // The marker must *start* the comment text (after the comment
        // sigils): prose that merely mentions `lint-allow(...)` — docs,
        // this file — is not an allow.
        let t = comment
            .trim_start_matches(|c: char| c.is_whitespace() || c == '/' || c == '!' || c == '*');
        let (file_level, rest) = if let Some(r) = t.strip_prefix("lint-allow-file(") {
            (true, r)
        } else if let Some(r) = t.strip_prefix("lint-allow(") {
            (false, r)
        } else {
            continue;
        };
        let Some(close) = rest.find(')') else { continue };
        let rule = rest[..close].trim().to_string();
        let after = rest[close + 1..].trim_start();
        let reason_ok = after.starts_with(':') && !after[1..].trim().is_empty();
        allows.push(Allow { rule, line: i, file_level, reason_ok, used: false });
    }
    allows
}

/// Lints one file: runs every applicable rule, applies allows, reports
/// malformed and unused allows.
pub fn lint_file(file: &SourceFile) -> Vec<Finding> {
    let mut raw: Vec<(usize, &'static str, String)> = Vec::new();
    for rule in rules() {
        if !(rule.applies)(&file.path) {
            continue;
        }
        for (i, code) in file.code_lines.iter().enumerate() {
            if rule.skip_tests && file.in_test[i] {
                continue;
            }
            if rule.id == "partial-cmp-sort" {
                let sorting = ["sort_by", "sort_unstable_by", "max_by", "min_by", "binary_search_by"]
                    .iter()
                    .any(|t| has_word(code, t));
                if sorting {
                    let window = file.code_lines[i..file.len().min(i + 4)].join("\n");
                    if window.contains("partial_cmp") {
                        raw.push((
                            i,
                            rule.id,
                            String::from(
                                "`partial_cmp` inside an ordering callback: NaN makes the \
                                 comparator panic or misorder; use `total_cmp` for floats",
                            ),
                        ));
                    }
                }
                continue;
            }
            if rule.id == "cfg-test-mod" {
                let t = code.trim_start();
                if (t.starts_with("mod tests") || t.starts_with("pub mod tests"))
                    && !file.in_test[i]
                {
                    raw.push((
                        i,
                        rule.id,
                        String::from(
                            "inline `mod tests` must be gated with `#[cfg(test)]` so test \
                             code never ships in the library",
                        ),
                    ));
                }
                continue;
            }
            if let Some(msg) = (rule.check)(code) {
                raw.push((i, rule.id, msg));
            }
        }
    }

    let mut allows = parse_allows(file);
    let mut findings = Vec::new();
    for (line, rule_id, msg) in raw {
        let mut suppressed = false;
        for allow in allows.iter_mut() {
            if allow.rule != rule_id || !allow.reason_ok {
                continue;
            }
            let hit = if allow.file_level {
                allow.line < FILE_ALLOW_WINDOW
            } else {
                allow.line == line || allow.line + 1 == line
            };
            if hit {
                allow.used = true;
                suppressed = true;
                break;
            }
        }
        if !suppressed {
            findings.push(Finding {
                rule: rule_id,
                path: file.path.clone(),
                line: line + 1,
                message: msg,
            });
        }
    }
    for allow in &allows {
        if !allow.reason_ok {
            findings.push(Finding {
                rule: "malformed-allow",
                path: file.path.clone(),
                line: allow.line + 1,
                message: format!(
                    "lint-allow for `{}` has no reason; write `lint-allow({}): <why this \
                     is benign>`",
                    allow.rule, allow.rule
                ),
            });
        } else if !allow.used {
            findings.push(Finding {
                rule: "unused-allow",
                path: file.path.clone(),
                line: allow.line + 1,
                message: format!(
                    "lint-allow({}) suppresses nothing — the violation was fixed or the \
                     rule/scope changed; delete the comment",
                    allow.rule
                ),
            });
        }
    }
    findings.sort_by(|a, b| a.line.cmp(&b.line).then(a.rule.cmp(b.rule)));
    findings
}

/// Number of distinct source rules in the catalog (the two allow
/// meta-rules included).
pub fn rule_count() -> usize {
    rules().len() + 2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        lint_file(&SourceFile::scan(path, src))
    }

    fn rules_of(findings: &[Finding]) -> Vec<&str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn hash_containers_fires_in_scope_only() {
        let bad = "fn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n";
        assert_eq!(rules_of(&run("crates/netlist/src/x.rs", bad)), ["hash-containers"]);
        // Out of scope: mlp is not digest-adjacent.
        assert!(run("crates/mlp/src/x.rs", bad).is_empty());
        // `use` lines are exempt; usage is what matters.
        assert!(run("crates/netlist/src/x.rs", "use std::collections::HashMap;\n").is_empty());
    }

    #[test]
    fn hash_containers_quiet_on_btreemap() {
        let good = "fn f() { let m: BTreeMap<u32, u32> = BTreeMap::new(); }\n";
        assert!(run("crates/netlist/src/x.rs", good).is_empty());
    }

    #[test]
    fn wall_clock_fires_outside_obs() {
        let bad = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(rules_of(&run("crates/dse/src/x.rs", bad)), ["wall-clock"]);
        assert!(run("crates/obs/src/x.rs", bad).is_empty());
        assert!(run("crates/bench/src/x.rs", bad).is_empty());
        // Word boundary: prose-like identifiers do not fire.
        assert!(run("crates/dse/src/x.rs", "fn instantiate_Instantly() {}\n").is_empty());
    }

    #[test]
    fn wall_clock_quiet_on_facade() {
        let good = "fn f() { let w = clapped_obs::Stopwatch::start(); let _ = w.elapsed(); }\n";
        assert!(run("crates/exec/src/x.rs", good).is_empty());
    }

    #[test]
    fn entropy_rng_fires_even_in_tests() {
        let bad = "#[cfg(test)]\nmod tests {\n fn t() { let r = rand::thread_rng(); }\n}\n";
        assert_eq!(rules_of(&run("crates/dse/src/x.rs", bad)), ["entropy-rng"]);
        let good = "fn f() { let r = ChaCha8Rng::seed_from_u64(7); }\n";
        assert!(run("crates/dse/src/x.rs", good).is_empty());
    }

    #[test]
    fn partial_cmp_sort_fires_across_lines() {
        let bad = "fn f(v: &mut Vec<f64>) {\n    v.sort_by(|a, b| {\n        a.partial_cmp(b).unwrap()\n    });\n}\n";
        let found = run("crates/errmodel/src/x.rs", bad);
        assert!(rules_of(&found).contains(&"partial-cmp-sort"), "{found:?}");
        let good = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.total_cmp(b)); }\n";
        assert!(run("crates/errmodel/src/x.rs", good).is_empty());
    }

    #[test]
    fn partial_cmp_alone_is_fine() {
        // partial_cmp in a plain comparison (no sort) is legitimate.
        let ok = "fn f(a: f64, b: f64) -> bool { a.partial_cmp(&b) == Some(std::cmp::Ordering::Less) }\n";
        assert!(run("crates/errmodel/src/x.rs", ok).is_empty());
    }

    #[test]
    fn no_unwrap_spares_tests_and_doc_comments() {
        let bad = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert_eq!(rules_of(&run("crates/la/src/x.rs", bad)), ["no-unwrap"]);
        let test_only = "#[cfg(test)]\nmod tests {\n fn t() { Some(1).unwrap(); }\n}\n";
        assert!(run("crates/la/src/x.rs", test_only).is_empty());
        let doc = "/// ```\n/// x.unwrap();\n/// ```\nfn f() {}\n";
        assert!(run("crates/la/src/x.rs", doc).is_empty());
        // Bins may unwrap (CLI top level).
        assert!(run("crates/bench/src/bin/x.rs", bad).is_empty());
    }

    #[test]
    fn no_expect_fires_only_in_panic_free_layers() {
        let bad = "fn f() { LOCK.lock().expect(\"poisoned\"); }\n";
        assert_eq!(rules_of(&run("crates/exec/src/x.rs", bad)), ["no-expect"]);
        assert_eq!(rules_of(&run("crates/dse/src/checkpoint.rs", bad)), ["no-expect"]);
        assert_eq!(rules_of(&run("crates/runtime/src/supervisor.rs", bad)), ["no-expect"]);
        // The daemon must degrade, not abort: a panicking worker shard
        // would strand its tenants' jobs.
        assert_eq!(rules_of(&run("crates/serve/src/server.rs", bad)), ["no-expect"]);
        // The compiled stream pipeline propagates simulation errors; a
        // panic mid-frame would kill a whole DSE sweep.
        assert_eq!(rules_of(&run("crates/accel/src/streamsim.rs", bad)), ["no-expect"]);
        // Catalog generation and pre-filtering run inside sharded exec
        // closures; a panic there aborts a whole cold build.
        assert_eq!(rules_of(&run("crates/axops/src/gen.rs", bad)), ["no-expect"]);
        assert_eq!(rules_of(&run("crates/core/src/prefilter.rs", bad)), ["no-expect"]);
        // The error-bound analyzer and its catalog gate feed CI verdicts;
        // a panic there reads as a crash, not a soundness finding.
        assert_eq!(rules_of(&run("crates/netlist/src/errbound.rs", bad)), ["no-expect"]);
        assert_eq!(rules_of(&run("crates/lint/src/errbounds.rs", bad)), ["no-expect"]);
        assert!(run("crates/serve/src/bin/clapped_serve.rs", bad).is_empty());
        assert!(run("crates/netlist/src/x.rs", bad).is_empty());
        assert!(run("crates/axops/src/arch.rs", bad).is_empty());
    }

    #[test]
    fn no_print_fires_outside_bench() {
        let bad = "fn f() { println!(\"dbg\"); }\n";
        assert_eq!(rules_of(&run("crates/core/src/x.rs", bad)), ["no-print"]);
        assert!(run("crates/bench/src/lib.rs", bad).is_empty());
    }

    #[test]
    fn todo_markers_fire_everywhere() {
        assert_eq!(rules_of(&run("crates/la/src/x.rs", "fn f() { todo!() }\n")), ["todo-markers"]);
        assert_eq!(
            rules_of(&run("crates/la/tests/t.rs", "fn f() { unimplemented!() }\n")),
            ["todo-markers"]
        );
    }

    #[test]
    fn cfg_test_mod_requires_gate() {
        let bad = "mod tests {\n fn t() {}\n}\n";
        assert_eq!(rules_of(&run("crates/la/src/x.rs", bad)), ["cfg-test-mod"]);
        let good = "#[cfg(test)]\nmod tests {\n fn t() {}\n}\n";
        assert!(run("crates/la/src/x.rs", good).is_empty());
    }

    #[test]
    fn allow_suppresses_exactly_one_finding() {
        // Two identical violations; the allow sits above the first.
        let src = "// lint-allow(no-unwrap): provably Some — length checked above\n\
                   fn f(x: Option<u8>) -> u8 { x.unwrap() }\n\
                   fn g(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let found = run("crates/la/src/x.rs", src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, "no-unwrap");
        assert_eq!(found[0].line, 3, "only the un-allowed line remains");
    }

    #[test]
    fn same_line_allow_works() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() } // lint-allow(no-unwrap): checked\n";
        assert!(run("crates/la/src/x.rs", src).is_empty());
    }

    #[test]
    fn file_level_allow_suppresses_all() {
        let src = "// lint-allow-file(no-unwrap): generated lookup tables, all keys present\n\
                   fn f(x: Option<u8>) -> u8 { x.unwrap() }\n\
                   fn g(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert!(run("crates/la/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_without_reason_is_rejected() {
        let src = "// lint-allow(no-unwrap)\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let found = run("crates/la/src/x.rs", src);
        let rules: Vec<&str> = rules_of(&found);
        assert!(rules.contains(&"no-unwrap"), "violation still reported: {found:?}");
        assert!(rules.contains(&"malformed-allow"), "{found:?}");
    }

    #[test]
    fn unused_allow_is_reported() {
        let src = "// lint-allow(no-unwrap): stale excuse\nfn f() {}\n";
        assert_eq!(rules_of(&run("crates/la/src/x.rs", src)), ["unused-allow"]);
    }

    #[test]
    fn allow_in_string_does_not_count() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    let _s = \"lint-allow(no-unwrap): fake\";\n    x.unwrap()\n}\n";
        assert_eq!(rules_of(&run("crates/la/src/x.rs", src)), ["no-unwrap"]);
    }

    #[test]
    fn no_silent_truncation_fires_in_scope_only() {
        let bad = "fn f(x: u64) -> u16 { x as u16 }\n";
        assert_eq!(rules_of(&run("crates/netlist/src/x.rs", bad)), ["no-silent-truncation"]);
        assert_eq!(rules_of(&run("crates/exec/src/cache.rs", bad)), ["no-silent-truncation"]);
        assert_eq!(rules_of(&run("crates/axops/src/table.rs", bad)), ["no-silent-truncation"]);
        // Out of scope: arch generators are not digest-adjacent.
        assert!(run("crates/axops/src/arch.rs", bad).is_empty());
        assert!(run("crates/dse/src/x.rs", bad).is_empty());
        // Widening targets and usize are not flagged.
        assert!(run("crates/netlist/src/x.rs", "fn f(x: u8) -> u64 { x as u64 }\n").is_empty());
        assert!(run("crates/netlist/src/x.rs", "fn f(x: u8) -> usize { x as usize }\n").is_empty());
        // Tests inside scoped files are exempt.
        let test_only = "#[cfg(test)]\nmod tests {\n fn t(x: u64) -> u8 { x as u8 }\n}\n";
        assert!(run("crates/netlist/src/x.rs", test_only).is_empty());
        // The allow escape hatch documents losslessness.
        let allowed = "fn f(x: u64) -> u16 { x as u16 } // lint-allow(no-silent-truncation): x < 2^16 by construction\n";
        assert!(run("crates/netlist/src/x.rs", allowed).is_empty());
    }

    #[test]
    fn catalog_size_meets_floor() {
        assert!(rule_count() >= 9, "{} source rules", rule_count());
    }
}
