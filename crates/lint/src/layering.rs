//! Crate-layering lint: the dependency DAG must respect the layer
//! ranking below, derived from each crate's `Cargo.toml`.
//!
//! Each workspace crate sits in a numbered layer; a crate may depend
//! only on crates in **strictly lower** layers. `[dev-dependencies]`
//! are exempt (tests may reach sideways), and non-workspace (vendored)
//! dependencies are ignored. The ranking makes inversions — say,
//! `clapped-netlist` growing a dependency on `clapped-dse` — a lint
//! error instead of a slow architectural drift.

use crate::Finding;
use std::io;
use std::path::Path;

/// Layer rank per workspace crate. Leaves (no workspace deps) at 0,
/// the bench harness at the top. A dependency is legal iff
/// `rank(dep) < rank(crate)`.
const LAYERS: &[(&str, u32)] = &[
    ("clapped-obs", 0),
    ("clapped-la", 0),
    ("clapped-exec", 1),
    ("clapped-netlist", 2),
    ("clapped-mlp", 2),
    ("clapped-axops", 3),
    ("clapped-errmodel", 4),
    ("clapped-imgproc", 4),
    ("clapped-accel", 5),
    ("clapped-dse", 5),
    ("clapped-runtime", 6),
    ("clapped-core", 7),
    ("clapped-lint", 6),
    ("clapped-serve", 8),
    ("clapped-bench", 9),
];

fn rank(name: &str) -> Option<u32> {
    LAYERS.iter().find(|(n, _)| *n == name).map(|&(_, r)| r)
}

/// Extracts `[dependencies]` entries (names only) from a manifest.
/// Line-oriented: good enough for this workspace's plain manifests.
fn dependencies(manifest: &str) -> Vec<String> {
    let mut deps = Vec::new();
    let mut in_deps = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_deps = line == "[dependencies]";
            continue;
        }
        if !in_deps || line.is_empty() || line.starts_with('#') {
            continue;
        }
        let name: String = line
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '_')
            .collect();
        if !name.is_empty() {
            deps.push(name);
        }
    }
    deps
}

/// Checks one crate's direct dependency list against the layer table.
/// Exposed (crate-visible) so tests can seed violations without a
/// filesystem fixture.
pub(crate) fn check_crate(name: &str, deps: &[String], manifest_path: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let Some(my_rank) = rank(name) else {
        findings.push(Finding {
            rule: "layering",
            path: manifest_path.to_string(),
            line: 0,
            message: format!(
                "crate `{name}` is not in the layer table; add it to LAYERS in \
                 crates/lint/src/layering.rs with its rank"
            ),
        });
        return findings;
    };
    for dep in deps {
        let Some(dep_rank) = rank(dep) else {
            // Vendored / external dependency: out of scope.
            continue;
        };
        if dep_rank >= my_rank {
            findings.push(Finding {
                rule: "layering",
                path: manifest_path.to_string(),
                line: 0,
                message: format!(
                    "`{name}` (layer {my_rank}) must not depend on `{dep}` (layer \
                     {dep_rank}): dependencies may only point at strictly lower layers"
                ),
            });
        }
    }
    findings
}

/// Parses every `crates/*/Cargo.toml` and checks the dependency DAG
/// against the layer table.
///
/// # Errors
///
/// Propagates filesystem errors reading the manifests.
pub fn lint_layering(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    let mut crate_dirs: Vec<std::path::PathBuf> = Vec::new();
    for entry in std::fs::read_dir(root.join("crates"))? {
        let p = entry?.path();
        if p.join("Cargo.toml").is_file() {
            crate_dirs.push(p);
        }
    }
    crate_dirs.sort();
    for dir in crate_dirs {
        let manifest = std::fs::read_to_string(dir.join("Cargo.toml"))?;
        let name = manifest
            .lines()
            .find_map(|l| l.trim().strip_prefix("name = ").map(|v| v.trim_matches('"').to_string()))
            .unwrap_or_default();
        let rel = format!(
            "crates/{}/Cargo.toml",
            dir.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default()
        );
        findings.extend(check_crate(&name, &dependencies(&manifest), &rel));
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deps(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn inversion_is_reported() {
        let f = check_crate("clapped-netlist", &deps(&["clapped-dse"]), "crates/netlist/Cargo.toml");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "layering");
        assert!(f[0].message.contains("clapped-dse"), "{}", f[0].message);
    }

    #[test]
    fn same_layer_dependency_is_reported() {
        let f = check_crate("clapped-accel", &deps(&["clapped-dse"]), "x");
        assert_eq!(f.len(), 1, "same-rank deps are cycles waiting to happen");
    }

    #[test]
    fn legal_downward_deps_are_quiet() {
        let f = check_crate(
            "clapped-axops",
            &deps(&["clapped-exec", "clapped-netlist", "serde", "rand"]),
            "x",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn serve_sits_above_core_and_below_bench() {
        let clean = check_crate("clapped-serve", &deps(&["clapped-core", "clapped-dse"]), "x");
        assert!(clean.is_empty(), "{clean:?}");
        let up = check_crate("clapped-core", &deps(&["clapped-serve"]), "x");
        assert_eq!(up.len(), 1, "core must not reach up into the serving layer");
        let bench = check_crate("clapped-bench", &deps(&["clapped-serve"]), "x");
        assert!(bench.is_empty(), "the load generator drives the daemon: {bench:?}");
    }

    #[test]
    fn unknown_crate_is_reported() {
        let f = check_crate("clapped-new-thing", &deps(&[]), "x");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("layer table"));
    }

    #[test]
    fn dependencies_parser_reads_only_the_deps_section() {
        let manifest = "\
[package]
name = \"clapped-x\"

[dependencies]
clapped-obs.workspace = true
rand = { version = \"0.8\", default-features = false }

[dev-dependencies]
proptest.workspace = true
";
        assert_eq!(dependencies(manifest), vec!["clapped-obs", "rand"]);
    }

    /// The real workspace respects the layering.
    #[test]
    fn workspace_layering_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let f = lint_layering(&root).expect("read manifests");
        assert!(f.is_empty(), "{f:?}");
    }
}
