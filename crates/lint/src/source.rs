//! Lexical model of a Rust source file for the line/token-oriented
//! lints.
//!
//! The scanner does **not** parse Rust. It produces just enough
//! structure for reliable token rules:
//!
//! - a *code mask*: the file's text with every comment and string
//!   literal blanked out, so a rule regexing for `HashMap` cannot fire
//!   on prose, and the allow-comment parser cannot be fooled by a
//!   string containing `lint-allow`;
//! - the comment text per line (where allow comments live);
//! - per-line `#[cfg(test)]`-region membership, tracked by brace depth
//!   from the attribute, so rules can exempt inline test modules.
//!
//! This is the rustc-`tidy` trade-off: a few hundred lines of scanner
//! instead of a parser dependency, at the cost of rules being lexical
//! rather than semantic — which is exactly the granularity the
//! workspace invariants need.

/// One scanned source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Code with comments and string/char literal *contents* blanked to
    /// spaces (delimiters kept), split into lines.
    pub code_lines: Vec<String>,
    /// Comment text per line (everything after `//` or inside `/* */`
    /// that falls on that line), concatenated; empty when none.
    pub comment_lines: Vec<String>,
    /// Whether each line is inside a `#[cfg(test)]`-gated item.
    pub in_test: Vec<bool>,
}

impl SourceFile {
    /// Scans `content` into the lexical model.
    pub fn scan(path: impl Into<String>, content: &str) -> SourceFile {
        let (code, comments) = mask(content);
        let code_lines: Vec<String> = split_lines(&code);
        let comment_lines: Vec<String> = split_lines(&comments);
        let in_test = cfg_test_regions(&code_lines);
        SourceFile { path: path.into(), code_lines, comment_lines, in_test }
    }

    /// Number of lines.
    pub fn len(&self) -> usize {
        self.code_lines.len()
    }

    /// True when the file has no lines.
    pub fn is_empty(&self) -> bool {
        self.code_lines.is_empty()
    }
}

fn split_lines(s: &str) -> Vec<String> {
    s.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l).to_string()).collect()
}

/// Splits `content` into a code mask and a comment mask of identical
/// shape (same line structure). In the code mask, comments and literal
/// contents become spaces; in the comment mask, everything *except*
/// comment text becomes spaces.
fn mask(content: &str) -> (String, String) {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let mut state = State::Code;
    let mut code = String::with_capacity(content.len());
    let mut comments = String::with_capacity(content.len());
    let chars: Vec<char> = content.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            code.push('\n');
            comments.push('\n');
            i += 1;
            continue;
        }
        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    code.push(' ');
                    comments.push(' ');
                    i += 1;
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    code.push_str("  ");
                    comments.push_str("  ");
                    i += 2;
                    continue;
                }
                '"' => {
                    state = State::Str;
                    code.push('"');
                    comments.push(' ');
                }
                'r' if next == Some('"') || next == Some('#') => {
                    // Possible raw string: r"..." or r#"..."# (any #-count).
                    let mut j = i + 1;
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        state = State::RawStr(hashes);
                        for _ in i..=j {
                            code.push(' ');
                            comments.push(' ');
                        }
                        i = j + 1;
                        continue;
                    }
                    code.push(c);
                    comments.push(' ');
                }
                '\'' => {
                    // Char literal vs lifetime: a lifetime is `'ident`
                    // not followed by a closing quote.
                    let is_lifetime = next.map(|n| n.is_alphabetic() || n == '_').unwrap_or(false)
                        && chars.get(i + 2) != Some(&'\'');
                    if is_lifetime {
                        code.push(c);
                        comments.push(' ');
                    } else {
                        state = State::Char;
                        code.push('\'');
                        comments.push(' ');
                    }
                }
                _ => {
                    code.push(c);
                    comments.push(' ');
                }
            },
            State::LineComment => {
                code.push(' ');
                comments.push(c);
            }
            State::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    state = if depth == 1 { State::Code } else { State::BlockComment(depth - 1) };
                    code.push_str("  ");
                    comments.push_str("  ");
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    code.push_str("  ");
                    comments.push_str("  ");
                    i += 2;
                    continue;
                }
                code.push(' ');
                comments.push(c);
            }
            State::Str => {
                if c == '\\' {
                    code.push(' ');
                    comments.push(' ');
                    if next.is_some() && next != Some('\n') {
                        code.push(' ');
                        comments.push(' ');
                        i += 2;
                        continue;
                    }
                } else if c == '"' {
                    state = State::Code;
                    code.push('"');
                    comments.push(' ');
                } else {
                    code.push(' ');
                    comments.push(' ');
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0u32;
                    while seen < hashes && chars.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        state = State::Code;
                        for _ in i..j {
                            code.push(' ');
                            comments.push(' ');
                        }
                        i = j;
                        continue;
                    }
                }
                code.push(' ');
                comments.push(' ');
            }
            State::Char => {
                if c == '\\' && next.is_some() && next != Some('\n') {
                    code.push_str("  ");
                    comments.push_str("  ");
                    i += 2;
                    continue;
                }
                if c == '\'' {
                    state = State::Code;
                }
                code.push(' ');
                comments.push(' ');
            }
        }
        i += 1;
    }
    (code, comments)
}

/// Marks lines belonging to `#[cfg(test)]`-gated items by tracking brace
/// depth from the attribute through the end of the item it gates.
fn cfg_test_regions(code_lines: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; code_lines.len()];
    let mut i = 0;
    while i < code_lines.len() {
        let compact: String = code_lines[i].chars().filter(|c| !c.is_whitespace()).collect();
        if !compact.contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        // Walk forward to the gated item's opening brace, then to its
        // matching close.
        let mut depth: i64 = 0;
        let mut opened = false;
        let mut j = i;
        while j < code_lines.len() {
            in_test[j] = true;
            for c in code_lines[j].chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    // A gated non-brace item (e.g. `#[cfg(test)] use ...;`)
                    // ends at the first `;` before any brace opens.
                    ';' if !opened => {
                        depth = 0;
                        opened = true;
                    }
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_blanked_from_code() {
        let f = SourceFile::scan("x.rs", "let a = 1; // HashMap here\n/* HashMap */ let b;\n");
        assert!(!f.code_lines[0].contains("HashMap"));
        assert!(f.comment_lines[0].contains("HashMap here"));
        assert!(!f.code_lines[1].contains("HashMap"));
        assert!(f.code_lines[1].contains("let b;"));
    }

    #[test]
    fn strings_are_blanked_but_structure_kept() {
        let f = SourceFile::scan("x.rs", "let s = \"HashMap \\\" inside\"; let t = 1;\n");
        assert!(!f.code_lines[0].contains("HashMap"));
        assert!(f.code_lines[0].contains("let t = 1;"));
    }

    #[test]
    fn raw_strings_and_chars_and_lifetimes() {
        let src = "let r = r#\"Instant::now()\"#;\nlet c = '\"';\nfn f<'a>(x: &'a u8) {}\nlet q = 'x';\n";
        let f = SourceFile::scan("x.rs", src);
        assert!(!f.code_lines[0].contains("Instant"));
        assert!(f.code_lines[2].contains("fn f<'a>(x: &'a u8) {}"));
        assert!(!f.code_lines[3].contains('x'), "char literal contents blanked");
    }

    #[test]
    fn nested_block_comments() {
        let f = SourceFile::scan("x.rs", "/* outer /* inner */ still comment */ let k;\n");
        assert!(f.code_lines[0].contains("let k;"));
        assert!(!f.code_lines[0].contains("outer"));
        assert!(!f.code_lines[0].contains("still"));
    }

    #[test]
    fn cfg_test_region_covers_the_module() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn tail() {}\n";
        let f = SourceFile::scan("x.rs", src);
        // (trailing empty line from the final `\n`)
        assert_eq!(f.in_test, vec![false, true, true, true, true, false, false]);
    }

    #[test]
    fn cfg_test_on_single_item() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn real() {}\n";
        let f = SourceFile::scan("x.rs", src);
        assert_eq!(f.in_test, vec![true, true, false, false]);
    }
}
