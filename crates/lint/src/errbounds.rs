//! Formal error-bound soundness gate over the approximate-operator
//! catalog.
//!
//! Every multiplier in [`clapped_axops::Catalog::standard`] and every
//! adder in [`clapped_axops::adders::standard_adders`] is analyzed with
//! `clapped_netlist::errbound` against its exact reference netlist, and
//! the *proved* bounds are cross-checked against the operator's
//! exhaustive behavioural table:
//!
//! - **interval soundness** — the interval-tier worst-case error bound
//!   must dominate the observed maximum absolute error. A proved bound
//!   below an observed error is unsound by definition and fails the
//!   gate.
//! - **exact-tier agreement** — when the BDD tier fits its node budget,
//!   its mismatch count must equal the table's mismatch count and its
//!   worst-case error must equal the table's maximum absolute error,
//!   bit-exactly. The exact tier re-derives the table's error profile
//!   from structure alone, so any disagreement is a bug in one of the
//!   two pipelines.
//!
//! A blown BDD budget is *not* a violation — the analyzer falls back to
//! the interval bound, which is still checked for soundness. The pure
//! checker [`check_operator_bounds`] is exposed separately so the
//! mutation tests can prove the gate actually fails on a tampered
//! (unsound) bound.

use clapped_axops::adders::{standard_adders, Add8s, AddArch};
use clapped_axops::{build_mul_table, Catalog, Mul8s, MulArch};
use clapped_netlist::{analyze_error_bounds, ErrBoundConfig, ErrorBounds, Netlist};

/// Error-bound gate result for one catalog operator.
#[derive(Debug, Clone)]
pub struct ErrBoundReport {
    /// Operator name (e.g. `mul8s_tr4`).
    pub name: String,
    /// The proved bounds; `None` when the analyzer itself errored
    /// (interface mismatch — always a violation).
    pub bounds: Option<ErrorBounds>,
    /// Largest absolute error observed in the exhaustive table.
    pub observed_max_abs: u64,
    /// Input pairs whose table entry differs from the ideal result.
    pub observed_mismatches: u64,
    /// Whether the exact BDD tier completed within budget.
    pub exact_mode: bool,
    /// Soundness violations; empty for a clean operator.
    pub violations: Vec<String>,
}

impl ErrBoundReport {
    /// Whether this operator passes the gate.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The exact-mode configuration used by the CI gate (`clapped_lint
/// --deny`): a node budget measured to fit every standard-catalog
/// family's 8×8 miter (~1–2 M nodes), run in release builds only.
pub fn gate_config() -> ErrBoundConfig {
    ErrBoundConfig { bdd_node_limit: 2_000_000, signed_outputs: true }
}

/// Cross-checks proved bounds against exhaustively observed error
/// statistics, returning every violation found. Pure — this is the
/// function the seeded-mutation tests tamper with.
pub fn check_operator_bounds(
    bounds: &ErrorBounds,
    observed_max_abs: u64,
    observed_mismatches: u64,
) -> Vec<String> {
    let mut violations = Vec::new();
    if bounds.proved_wce < observed_max_abs {
        violations.push(format!(
            "interval WCE {} is below the observed max |error| {} — the proved bound \
             is unsound",
            bounds.proved_wce, observed_max_abs
        ));
    }
    if let Some(e) = &bounds.exact {
        if e.wce != observed_max_abs {
            violations.push(format!(
                "exact-tier WCE {} != observed max |error| {}",
                e.wce, observed_max_abs
            ));
        }
        if e.mismatch_count != u128::from(observed_mismatches) {
            violations.push(format!(
                "exact-tier mismatch count {} != table mismatch count {}",
                e.mismatch_count, observed_mismatches
            ));
        }
        if e.input_space != 0 {
            let recomputed = e.mismatch_count as f64 / e.input_space as f64;
            if e.error_rate != recomputed {
                violations.push(format!(
                    "exact-tier error rate {} inconsistent with {}/{}",
                    e.error_rate, e.mismatch_count, e.input_space
                ));
            }
        }
    }
    violations
}

/// Observed error statistics of an exhaustive 8×8 table against an
/// ideal function: (max |error|, mismatching input pairs).
fn observed_error(table: &[i16], ideal: impl Fn(i8, i8) -> i32) -> (u64, u64) {
    let mut max_abs = 0u64;
    let mut mismatches = 0u64;
    for (idx, &got) in table.iter().enumerate() {
        let a = (idx >> 8) as u8 as i8;
        let b = (idx & 0xff) as u8 as i8;
        let err = i64::from(i32::from(got) - ideal(a, b)).unsigned_abs();
        if err > 0 {
            mismatches += 1;
            max_abs = max_abs.max(err);
        }
    }
    (max_abs, mismatches)
}

fn report_for(
    name: &str,
    netlist: &Netlist,
    reference: &Netlist,
    cfg: &ErrBoundConfig,
    observed_max_abs: u64,
    observed_mismatches: u64,
) -> ErrBoundReport {
    match analyze_error_bounds(netlist, reference, cfg) {
        Ok(bounds) => {
            let violations = check_operator_bounds(&bounds, observed_max_abs, observed_mismatches);
            let exact_mode = bounds.exact.is_some();
            ErrBoundReport {
                name: name.to_string(),
                bounds: Some(bounds),
                observed_max_abs,
                observed_mismatches,
                exact_mode,
                violations,
            }
        }
        Err(e) => ErrBoundReport {
            name: name.to_string(),
            bounds: None,
            observed_max_abs,
            observed_mismatches,
            exact_mode: false,
            violations: vec![format!("error-bound analysis failed: {e}")],
        },
    }
}

/// Runs the error-bound gate over the full standard catalog
/// (multipliers then adders), in catalog order.
///
/// The configuration chooses the tier: `bdd_node_limit: 0` runs the
/// microsecond interval pass only (the `cargo test` default — sound
/// bounds, no exact counts), while [`gate_config`] enables the exact
/// BDD tier CI runs in release builds.
pub fn errbound_catalog(cfg: &ErrBoundConfig) -> Vec<ErrBoundReport> {
    let mul_ref = MulArch::Exact.build_netlist();
    let add_ref = AddArch::Exact.build_netlist();
    let catalog = Catalog::standard();
    let mut reports = Vec::new();
    for m in catalog.iter() {
        let table = build_mul_table(m.netlist());
        let (max_abs, mismatches) =
            observed_error(&table, |a, b| i32::from(a) * i32::from(b));
        reports.push(report_for(
            Mul8s::name(&**m),
            m.netlist(),
            &mul_ref,
            cfg,
            max_abs,
            mismatches,
        ));
    }
    for a in standard_adders() {
        let mut table = vec![0i16; 1 << 16];
        for (idx, slot) in table.iter_mut().enumerate() {
            let x = (idx >> 8) as u8 as i8;
            let y = (idx & 0xff) as u8 as i8;
            *slot = a.add(x, y);
        }
        let (max_abs, mismatches) =
            observed_error(&table, |x, y| i32::from(x) + i32::from(y));
        reports.push(report_for(
            Add8s::name(&*a),
            a.netlist(),
            &add_ref,
            cfg,
            max_abs,
            mismatches,
        ));
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapped_netlist::ExactError;

    /// Interval tier over the whole standard catalog: every proved
    /// bound dominates its table, in the debug-build default run. This
    /// is the same sweep CI runs in exact mode via `clapped_lint
    /// --deny`.
    #[test]
    fn standard_catalog_interval_bounds_are_sound() {
        let cfg = ErrBoundConfig { bdd_node_limit: 0, signed_outputs: true };
        let reports = errbound_catalog(&cfg);
        assert!(reports.len() >= 24, "expected the full catalog, got {}", reports.len());
        for r in &reports {
            assert!(r.is_clean(), "{}: {:?}", r.name, r.violations);
            // Interval-only runs never build BDDs; proved-equal
            // operators still get exact zeros via the congruence
            // shortcut.
            let proved_equal = r.bounds.as_ref().is_some_and(ErrorBounds::proved_equal);
            assert!(
                !r.exact_mode || proved_equal,
                "{}: interval-only config must not run the BDD tier",
                r.name
            );
        }
        // The exact operators are proved equal outright.
        for exact_name in ["mul8s_exact", "add8s_exact"] {
            let r = reports
                .iter()
                .find(|r| r.name == exact_name)
                .unwrap_or_else(|| panic!("{exact_name} missing from the catalog"));
            let bounds = r.bounds.as_ref().expect("analysis succeeded");
            assert!(bounds.proved_equal(), "{exact_name} must be proved equal");
            assert_eq!(r.observed_mismatches, 0);
        }
    }

    /// The exact BDD tier is cheap on adders (ripple structure): run it
    /// in debug builds and verify it reproduces the tables bit-exactly.
    #[test]
    fn adder_exact_tier_matches_tables() {
        let cfg = ErrBoundConfig { bdd_node_limit: 400_000, signed_outputs: true };
        let add_ref = AddArch::Exact.build_netlist();
        for a in standard_adders() {
            let mut table = vec![0i16; 1 << 16];
            for (idx, slot) in table.iter_mut().enumerate() {
                let x = (idx >> 8) as u8 as i8;
                let y = (idx & 0xff) as u8 as i8;
                *slot = a.add(x, y);
            }
            let (max_abs, mismatches) =
                observed_error(&table, |x, y| i32::from(x) + i32::from(y));
            let r = report_for(Add8s::name(&*a), a.netlist(), &add_ref, &cfg, max_abs, mismatches);
            assert!(r.is_clean(), "{}: {:?}", r.name, r.violations);
            assert!(r.exact_mode, "{}: adder miters must fit a 400k budget", r.name);
        }
    }

    /// Seeded mutation: the gate must FAIL when handed an unsound
    /// bound. Tampers each proved quantity in turn and checks the
    /// corresponding violation fires.
    #[test]
    fn tampered_bounds_fail_the_gate() {
        let cfg = ErrBoundConfig { bdd_node_limit: 0, signed_outputs: true };
        let tr4 = MulArch::Truncated { k: 4 }.build_netlist();
        let reference = MulArch::Exact.build_netlist();
        let table = build_mul_table(&tr4);
        let (max_abs, mismatches) = observed_error(&table, |a, b| i32::from(a) * i32::from(b));
        assert!(max_abs > 0, "tr4 must actually err");
        let sound = analyze_error_bounds(&tr4, &reference, &cfg).expect("analysis");
        assert!(check_operator_bounds(&sound, max_abs, mismatches).is_empty());

        // Mutation 1: interval bound claimed below the observed error.
        let mut tampered = sound.clone();
        tampered.proved_wce = max_abs - 1;
        let v = check_operator_bounds(&tampered, max_abs, mismatches);
        assert!(v.iter().any(|m| m.contains("unsound")), "{v:?}");

        // Mutation 2: exact tier disagreeing with the table count.
        let mut tampered = sound.clone();
        tampered.exact = Some(ExactError {
            mismatch_count: u128::from(mismatches) + 1,
            input_space: 1 << 16,
            error_rate: (mismatches + 1) as f64 / 65536.0,
            wce: max_abs,
        });
        let v = check_operator_bounds(&tampered, max_abs, mismatches);
        assert!(v.iter().any(|m| m.contains("mismatch count")), "{v:?}");

        // Mutation 3: exact WCE below the observed maximum.
        let mut tampered = sound;
        tampered.exact = Some(ExactError {
            mismatch_count: u128::from(mismatches),
            input_space: 1 << 16,
            error_rate: mismatches as f64 / 65536.0,
            wce: max_abs - 1,
        });
        let v = check_operator_bounds(&tampered, max_abs, mismatches);
        assert!(v.iter().any(|m| m.contains("exact-tier WCE")), "{v:?}");
    }

    /// Full exact-mode gate, as CI runs it (release builds only — the
    /// 8×8 multiplier miters need seconds of BDD work in debug).
    #[test]
    #[ignore = "release-scale: ~10s of BDD work; clapped_lint --deny runs this in CI"]
    fn standard_catalog_exact_gate_is_clean() {
        let reports = errbound_catalog(&gate_config());
        for r in &reports {
            assert!(r.is_clean(), "{}: {:?}", r.name, r.violations);
            assert!(r.exact_mode, "{}: gate budget must fit every catalog miter", r.name);
        }
    }
}
