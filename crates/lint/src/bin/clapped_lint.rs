//! The workspace static-analysis gate.
//!
//! ```text
//! clapped_lint [--root PATH] [--json] [--deny]
//! ```
//!
//! Runs all three analysis targets — the source/layering lints over the
//! workspace tree, the structural lints over every catalog operator
//! netlist (raw and optimized), and the error-bound soundness gate
//! (proved bounds cross-checked against every operator's exhaustive
//! table) — then prints a human-readable report, or one JSON document
//! with `--json`. With `--deny`, any source finding, structural error
//! or bound violation makes the process exit 1; this is the required CI
//! step.

use clapped_lint::errbounds::{errbound_catalog, gate_config, ErrBoundReport};
use clapped_lint::netlists::{lint_catalog, OpReport};
use clapped_lint::{lint_workspace, Finding, StructSeverity};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    json: bool,
    deny: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { root: PathBuf::from("."), json: false, deny: false };
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--json" => args.json = true,
            "--deny" => args.deny = true,
            "--root" => {
                args.root = PathBuf::from(argv.next().ok_or("--root needs a path")?);
            }
            other => {
                if let Some(p) = other.strip_prefix("--root=") {
                    args.root = PathBuf::from(p);
                } else {
                    return Err(format!("unknown argument `{other}` (try --root PATH, --json, --deny)"));
                }
            }
        }
    }
    Ok(args)
}

fn findings_json(findings: &[Finding]) -> serde_json::Value {
    serde_json::Value::Array(
        findings
            .iter()
            .map(|f| {
                serde_json::json!({
                    "rule": f.rule,
                    "path": f.path,
                    "line": f.line,
                    "message": f.message,
                })
            })
            .collect(),
    )
}

fn op_json(r: &OpReport) -> serde_json::Value {
    let struct_findings = |rep: &clapped_lint::StructReport| {
        serde_json::Value::Array(
            rep.findings
                .iter()
                .map(|f| {
                    serde_json::json!({
                        "rule": f.rule,
                        "severity": match f.severity {
                            StructSeverity::Error => "error",
                            StructSeverity::Warning => "warning",
                        },
                        "signal": f.signal.map(|s| s.index()),
                        "message": f.message,
                    })
                })
                .collect(),
        )
    };
    serde_json::json!({
        "name": r.name,
        "clean": r.is_clean(),
        "raw": {
            "gates": r.raw.stats.gates,
            "logic_gates": r.raw.stats.logic_gates,
            "depth": r.raw.stats.depth,
            "max_fanout": r.raw.stats.max_fanout,
            "dead_gates": r.raw.stats.dead_gates,
            "findings": struct_findings(&r.raw),
        },
        "optimized": {
            "logic_gates": r.optimized.stats.logic_gates,
            "depth": r.optimized.stats.depth,
            "dead_gates": r.optimized.stats.dead_gates,
            "findings": struct_findings(&r.optimized),
        },
        "escalations": r.escalations,
    })
}

fn errbound_json(r: &ErrBoundReport) -> serde_json::Value {
    serde_json::json!({
        "name": r.name,
        "clean": r.is_clean(),
        "exact_mode": r.exact_mode,
        "proved_wce": r.bounds.as_ref().map(|b| b.best_wce()),
        "error_cone_bits": r.bounds.as_ref().map(|b| b.cone_bits()),
        "observed_max_abs": r.observed_max_abs,
        "observed_mismatches": r.observed_mismatches,
        "violations": r.violations,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("clapped_lint: {e}");
            return ExitCode::from(2);
        }
    };

    let findings = match lint_workspace(&args.root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("clapped_lint: cannot lint {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };
    let ops = lint_catalog();
    let dirty_ops: Vec<&OpReport> = ops.iter().filter(|r| !r.is_clean()).collect();
    let struct_warnings: usize =
        ops.iter().map(|r| r.raw.warnings().count() + r.optimized.warnings().count()).sum();
    let bounds = errbound_catalog(&gate_config());
    let unsound: Vec<&ErrBoundReport> = bounds.iter().filter(|r| !r.is_clean()).collect();

    if args.json {
        let doc = serde_json::json!({
            "source": {
                "findings": findings_json(&findings),
                "count": findings.len(),
            },
            "netlists": {
                "operators": ops.iter().map(op_json).collect::<Vec<_>>(),
                "dirty": dirty_ops.len(),
                "warnings": struct_warnings,
            },
            "errbounds": {
                "operators": bounds.iter().map(errbound_json).collect::<Vec<_>>(),
                "unsound": unsound.len(),
                "exact_mode": bounds.iter().filter(|r| r.exact_mode).count(),
            },
            "deny": args.deny,
            "ok": findings.is_empty() && dirty_ops.is_empty() && unsound.is_empty(),
        });
        println!("{}", serde_json::to_string_pretty(&doc).unwrap_or_default());
    } else {
        println!("== clapped_lint: source rules ==");
        if findings.is_empty() {
            println!("clean ({} files scanned)", source_count(&args));
        } else {
            for f in &findings {
                println!("{f}");
            }
            println!("{} finding(s)", findings.len());
        }
        println!();
        println!("== clapped_lint: catalog netlists ==");
        for r in &ops {
            let status = if r.is_clean() { "ok " } else { "FAIL" };
            println!(
                "{status} {:<16} raw: {:>4} gates depth {:>2} dead {:>2} | opt: {:>4} gates depth {:>2}",
                r.name,
                r.raw.stats.logic_gates,
                r.raw.stats.depth,
                r.raw.stats.dead_gates,
                r.optimized.stats.logic_gates,
                r.optimized.stats.depth,
            );
            for f in r.raw.errors().chain(r.optimized.errors()) {
                println!("     error[{}]: {}", f.rule, f.message);
            }
            for e in &r.escalations {
                println!("     escalation: {e}");
            }
        }
        println!(
            "{} operator(s), {} dirty, {} structural warning(s)",
            ops.len(),
            dirty_ops.len(),
            struct_warnings
        );
        println!();
        println!("== clapped_lint: proved error bounds ==");
        for r in &bounds {
            let status = if r.is_clean() { "ok " } else { "FAIL" };
            let tier = if r.exact_mode { "exact" } else { "interval" };
            let proved = r.bounds.as_ref().map(|b| b.best_wce()).unwrap_or(0);
            println!(
                "{status} {:<16} {tier:<8} proved WCE {:>6} observed {:>6} mismatches {:>6}",
                r.name, proved, r.observed_max_abs, r.observed_mismatches,
            );
            for v in &r.violations {
                println!("     violation: {v}");
            }
        }
        println!(
            "{} operator(s), {} unsound, {} analyzed exactly",
            bounds.len(),
            unsound.len(),
            bounds.iter().filter(|r| r.exact_mode).count()
        );
    }

    if args.deny && (!findings.is_empty() || !dirty_ops.is_empty() || !unsound.is_empty()) {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn source_count(args: &Args) -> usize {
    clapped_lint::workspace_sources(&args.root).map(|v| v.len()).unwrap_or(0)
}
