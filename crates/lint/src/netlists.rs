//! Structural lint pass over the approximate-operator catalog.
//!
//! Every multiplier in [`clapped_axops::Catalog::standard`] and every
//! adder in [`clapped_axops::adders::standard_adders`] is checked twice with
//! [`clapped_netlist::lint_netlist`]:
//!
//! - **raw**: the netlist as generated. Structural *errors* (dangling
//!   fanins, cycles, port problems) fail the gate; dead gates are mere
//!   warnings here, since generators may legitimately emit logic a
//!   truncation then orphans.
//! - **optimized**: after `opt::optimize`. Here a surviving dead gate
//!   *escalates to an error* — the optimizer's dead-code elimination
//!   and the linter's cone-of-influence must agree on liveness.

use clapped_axops::adders::{standard_adders, Add8s};
use clapped_axops::{Catalog, Mul8s};
use clapped_netlist::{lint_netlist, optimize, Netlist, StructReport};

/// Lint result for one catalog operator.
#[derive(Debug, Clone)]
pub struct OpReport {
    /// Operator name (e.g. `mul8s_tr3`).
    pub name: String,
    /// Structural report on the generated netlist.
    pub raw: StructReport,
    /// Structural report on the `opt::optimize` output.
    pub optimized: StructReport,
    /// Escalated problems: optimizer/linter disagreements.
    pub escalations: Vec<String>,
}

impl OpReport {
    /// Whether this operator passes the gate: no structural errors in
    /// either form, and no escalations.
    pub fn is_clean(&self) -> bool {
        self.raw.errors().next().is_none()
            && self.optimized.errors().next().is_none()
            && self.escalations.is_empty()
    }
}

fn lint_operator(name: &str, netlist: &Netlist) -> OpReport {
    let raw = lint_netlist(netlist);
    let optimized_netlist = optimize(netlist);
    let optimized = lint_netlist(&optimized_netlist);
    let mut escalations = Vec::new();
    if optimized.stats.dead_gates > 0 {
        escalations.push(format!(
            "{} dead gate(s) survive opt::optimize — DCE and the lint cone-of-influence \
             disagree",
            optimized.stats.dead_gates
        ));
    }
    OpReport { name: name.to_string(), raw, optimized, escalations }
}

/// Runs the structural pass over the full standard catalog (multipliers
/// and adders), in catalog order.
pub fn lint_catalog() -> Vec<OpReport> {
    let catalog = Catalog::standard();
    let mut reports: Vec<OpReport> =
        catalog.iter().map(|m| lint_operator(Mul8s::name(&**m), m.netlist())).collect();
    for a in standard_adders() {
        reports.push(lint_operator(Add8s::name(&*a), a.netlist()));
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The shipped catalog is structurally sound, raw and optimized —
    /// the same check CI runs via `clapped_lint --deny`.
    #[test]
    fn standard_catalog_is_structurally_clean() {
        let reports = lint_catalog();
        assert!(reports.len() >= 24, "expected the full catalog, got {}", reports.len());
        for r in &reports {
            assert!(
                r.is_clean(),
                "{}: errors={:?} escalations={:?}",
                r.name,
                r.raw.errors().chain(r.optimized.errors()).collect::<Vec<_>>(),
                r.escalations
            );
            assert_eq!(
                r.optimized.stats.dead_gates, 0,
                "{}: optimize output must be fully live",
                r.name
            );
        }
    }

    /// Every raw catalog netlist's lint live cone agrees with the
    /// optimizer: re-linting the optimize output finds zero dead gates,
    /// so the fault-campaign dead-site skip is consistent with DCE.
    #[test]
    fn dead_cone_agrees_with_optimizer_on_catalog() {
        for r in lint_catalog() {
            assert_eq!(r.optimized.stats.dead_gates, 0, "{}", r.name);
            assert!(
                r.raw.live.iter().filter(|&&l| l).count() >= r.optimized.stats.logic_gates,
                "{}: live cone smaller than surviving logic",
                r.name
            );
        }
    }
}
