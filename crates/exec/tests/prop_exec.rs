//! Property tests for the execution substrate: digest stability and
//! field-order insensitivity, engine determinism across thread counts,
//! and LRU cache behaviour.

use clapped_exec::{
    digest_of, job_seed, Engine, ExecConfig, Fnv64, ResultCache, StructDigest,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Digests are pure functions of content: recomputing in the same
    /// process (and, since the algorithm is fully pinned, in any other)
    /// yields the same key.
    #[test]
    fn digest_is_stable_across_runs(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut a = Fnv64::new();
        a.write(&bytes);
        let mut b = Fnv64::new();
        b.write(&bytes);
        prop_assert_eq!(a.finish(), b.finish());
        prop_assert_eq!(digest_of(&bytes), digest_of(&bytes.clone()));
    }

    /// Struct digests do not depend on the order fields are fed.
    #[test]
    fn struct_digest_is_field_order_insensitive(
        values in proptest::collection::vec(any::<u64>(), 1..8),
        rot in 0usize..8,
    ) {
        let fields: Vec<(String, u64)> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| (format!("f{i}"), v))
            .collect();
        let forward = fields
            .iter()
            .fold(StructDigest::new("cfg"), |d, (name, v)| d.field(name, v))
            .finish();
        let mut rotated = fields.clone();
        let r = rot % rotated.len();
        rotated.rotate_left(r);
        let permuted = rotated
            .iter()
            .fold(StructDigest::new("cfg"), |d, (name, v)| d.field(name, v))
            .finish();
        prop_assert_eq!(forward, permuted);
    }

    /// Changing any single field value changes the struct digest
    /// (collision-freedom on a one-bit neighbourhood, not in general).
    #[test]
    fn struct_digest_sees_value_changes(a in any::<u64>(), b in any::<u64>(), flip in 0u32..64) {
        let base = StructDigest::new("cfg").field("a", &a).field("b", &b).finish();
        let tweaked = StructDigest::new("cfg")
            .field("a", &(a ^ (1u64 << flip)))
            .field("b", &b)
            .finish();
        prop_assert_ne!(base, tweaked);
    }

    /// The engine returns results in input order at every thread count.
    #[test]
    fn engine_is_order_preserving(
        items in proptest::collection::vec(any::<u32>(), 0..80),
        jobs in 1usize..9,
    ) {
        let engine = Engine::new(ExecConfig::with_jobs(jobs));
        let expect: Vec<u64> = items.iter().map(|&x| u64::from(x) * 3 + 1).collect();
        let got = engine.evaluate_many(&items, |_, &x| u64::from(x) * 3 + 1);
        prop_assert_eq!(got, expect);
    }

    /// Per-job seeds depend only on (base, index), never on thread count.
    #[test]
    fn job_seeds_are_schedule_independent(base in any::<u64>(), n in 1usize..40) {
        let items: Vec<usize> = (0..n).collect();
        let serial = Engine::new(ExecConfig::serial().seeded(base));
        let wide = Engine::new(ExecConfig::with_jobs(7).seeded(base));
        let a = serial.evaluate_many_seeded(&items, |_, _, s| s);
        let b = wide.evaluate_many_seeded(&items, |_, _, s| s);
        prop_assert_eq!(&a, &b);
        for (i, &s) in a.iter().enumerate() {
            prop_assert_eq!(s, job_seed(base, i));
        }
    }

    /// A warm cache always answers from storage: the second lookup of
    /// any key is a hit and never recomputes.
    #[test]
    fn warm_cache_never_recomputes(keys in proptest::collection::vec(any::<u64>(), 1..40)) {
        let cache: ResultCache<f64> = ResultCache::in_memory(64);
        for &k in &keys {
            cache.get_or_compute(k, || k as f64 * 0.5);
        }
        let computed = std::cell::Cell::new(0u32);
        for &k in &keys {
            let v = cache.get_or_compute(k, || {
                computed.set(computed.get() + 1);
                -1.0
            });
            prop_assert_eq!(v.to_bits(), (k as f64 * 0.5).to_bits());
        }
        prop_assert_eq!(computed.get(), 0, "warm lookups must not recompute");
    }

    /// The LRU never holds more than its capacity.
    #[test]
    fn lru_respects_capacity(keys in proptest::collection::vec(any::<u64>(), 1..120)) {
        let capacity = 8;
        let cache: ResultCache<f64> = ResultCache::in_memory(capacity);
        for &k in &keys {
            cache.insert(k, 1.0);
            prop_assert!(cache.stats().entries <= capacity);
        }
    }
}
