//! End-to-end determinism of MBO driven through the execution engine:
//! the Pareto front must be bit-identical whether candidate batches are
//! evaluated on one thread or eight, and a warm result cache must let a
//! repeat run skip every recomputation.

use std::sync::atomic::{AtomicUsize, Ordering};

use clapped_dse::{BatchOutcome, MboConfig, MboState, SearchResult};
use clapped_exec::{digest_of, Engine, ExecConfig, ResultCache};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

fn toy_objective(c: &[f64]) -> Vec<f64> {
    let x = (c[0] + c[1]) / 2.0;
    vec![x, (1.0 - x) * (1.0 - x) + 0.05 * (c[0] - c[1]).abs()]
}

fn toy_sample(rng: &mut ChaCha8Rng) -> Vec<f64> {
    vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]
}

fn config() -> MboConfig {
    MboConfig {
        initial_samples: 8,
        iterations: 4,
        batch: 4,
        candidates: 16,
        reference: vec![1.5, 1.5],
        kappa: 1.0,
        explore_fraction: 0.1,
        seed: 42,
    }
}

/// Runs a full MBO search with candidate batches fanned out on
/// `engine`, optionally answering from (and filling) `cache`.
fn run_with_engine(
    engine: &Engine,
    cache: Option<&ResultCache<Vec<f64>>>,
    computed: &AtomicUsize,
) -> SearchResult<Vec<f64>> {
    let mut state = MboState::new(&config()).unwrap();
    let mut sample = toy_sample;
    let encode = |c: &Vec<f64>| c.clone();
    let mut evaluate_batch = |cs: &[Vec<f64>]| -> Vec<BatchOutcome> {
        engine
            .evaluate_many(cs, |_, c| {
                let digest = digest_of(c);
                let objectives = match cache {
                    Some(cache) => cache.get_or_compute(digest, || {
                        computed.fetch_add(1, Ordering::Relaxed);
                        toy_objective(c)
                    }),
                    None => {
                        computed.fetch_add(1, Ordering::Relaxed);
                        toy_objective(c)
                    }
                };
                BatchOutcome::Value { objectives, digest }
            })
            .into_iter()
            .collect()
    };
    while !state.is_complete() {
        state
            .step_batched(&mut sample, &encode, &mut evaluate_batch)
            .unwrap();
    }
    assert!(state.eval_digests().iter().all(|&d| d != 0));
    state.into_result()
}

#[test]
fn pareto_front_is_identical_at_any_thread_count() {
    let computed = AtomicUsize::new(0);
    let serial = run_with_engine(&Engine::serial(), None, &computed);
    let wide = run_with_engine(&Engine::new(ExecConfig::with_jobs(8)), None, &computed);

    assert_eq!(serial.evaluated.len(), wide.evaluated.len());
    for ((ca, oa), (cb, ob)) in serial.evaluated.iter().zip(&wide.evaluated) {
        assert_eq!(ca, cb, "candidate streams diverged");
        for (a, b) in oa.iter().zip(ob) {
            assert_eq!(a.to_bits(), b.to_bits(), "objectives not bit-identical");
        }
    }
    for (&(na, ha), &(nb, hb)) in serial.hv_trace.iter().zip(&wide.hv_trace) {
        assert_eq!(na, nb);
        assert_eq!(ha.to_bits(), hb.to_bits(), "hypervolume trace diverged");
    }
    assert_eq!(serial.pareto_indices(), wide.pareto_indices());
}

#[test]
fn warm_cache_skips_every_recompute() {
    let cache: ResultCache<Vec<f64>> = ResultCache::in_memory(4096);
    let engine = Engine::new(ExecConfig::with_jobs(4));
    let computed = AtomicUsize::new(0);

    let cold = run_with_engine(&engine, Some(&cache), &computed);
    let cold_computes = computed.load(Ordering::Relaxed);
    assert!(cold_computes > 0, "cold run must compute something");

    let warm = run_with_engine(&engine, Some(&cache), &computed);
    let warm_computes = computed.load(Ordering::Relaxed) - cold_computes;
    assert_eq!(warm_computes, 0, "warm run recomputed {warm_computes} results");
    assert!(
        cache.stats().hits as usize >= warm.evaluated.len(),
        "every warm evaluation should be a cache hit"
    );

    // The replayed run is still the same search.
    assert_eq!(cold.evaluated.len(), warm.evaluated.len());
    assert_eq!(cold.pareto_indices(), warm.pareto_indices());
    for (&(_, ha), &(_, hb)) in cold.hv_trace.iter().zip(&warm.hv_trace) {
        assert_eq!(ha.to_bits(), hb.to_bits());
    }
}
