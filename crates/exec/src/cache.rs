//! Two-tier content-addressed result cache.
//!
//! Tier 1 is a bounded in-memory LRU; tier 2 is an optional on-disk JSON
//! store (one `{key:016x}.json` file per entry, by convention under
//! `results/cache/`) that survives process restarts. Keys are the stable
//! content digests produced by [`crate::digest`], mixed with a cache
//! salt — callers fold [`crate::CODE_VERSION_SALT`] plus any
//! instance-level context (image size, noise seed, …) into the salt so
//! an entry can never be replayed into a build or context it doesn't
//! belong to.
//!
//! # Cross-process coordination
//!
//! The disk tier doubles as a coordination substrate between processes
//! sharing one cache directory (the `clapped-serve` daemon runs N
//! server processes against a single store). Two guarantees make that
//! safe:
//!
//! 1. **No torn reads.** Every entry is written to a hidden temp file
//!    and published with an atomic `rename`, so a reader either sees a
//!    complete JSON document or no file at all — never a partial write.
//! 2. **Advisory write locks.** A writer first claims
//!    `{key:016x}.lock` with `create_new` (`O_EXCL`). Losing the race
//!    means another process is publishing the *same content-addressed
//!    value*; the loser skips its redundant write and counts
//!    [`CacheStats::lock_contention`]. Locks left behind by a killed
//!    writer expire after a TTL and are broken by the next writer.

use serde_json::Value;
use std::collections::{BTreeMap, HashMap};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use crate::digest::mix64;

/// How long an advisory lock file may exist before any writer may break
/// it — generous against slow NFS-style renames, small against a
/// permanently wedged entry after a `kill -9` mid-write.
const DEFAULT_LOCK_TTL: Duration = Duration::from_secs(30);

/// Conversion between a cached value and its on-disk JSON form.
///
/// `to_cache_json` returns `None` when a value cannot be represented
/// (e.g. a non-finite float — JSON has no encoding for it); such values
/// simply stay memory-only.
pub trait CacheCodec: Sized {
    /// Encodes the value for the disk tier, or `None` if unencodable.
    fn to_cache_json(&self) -> Option<Value>;
    /// Decodes a value previously written by `to_cache_json`; `None` on
    /// a malformed or foreign file (treated as a miss, never an error).
    fn from_cache_json(value: &Value) -> Option<Self>;
}

impl CacheCodec for f64 {
    fn to_cache_json(&self) -> Option<Value> {
        serde_json::Number::from_f64(*self).map(Value::Number)
    }

    fn from_cache_json(value: &Value) -> Option<Self> {
        value.as_f64()
    }
}

impl CacheCodec for Vec<f64> {
    fn to_cache_json(&self) -> Option<Value> {
        let items: Option<Vec<Value>> = self.iter().map(|v| v.to_cache_json()).collect();
        items.map(Value::Array)
    }

    fn from_cache_json(value: &Value) -> Option<Self> {
        value.as_array()?.iter().map(|v| v.as_f64()).collect()
    }
}

impl CacheCodec for u64 {
    fn to_cache_json(&self) -> Option<Value> {
        Some(Value::from(*self))
    }

    fn from_cache_json(value: &Value) -> Option<Self> {
        value.as_u64()
    }
}

/// Counters of a [`ResultCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from memory.
    pub hits: u64,
    /// Lookups answered from the disk tier (these also warm memory).
    pub disk_hits: u64,
    /// Lookups that found nothing in either tier.
    pub misses: u64,
    /// Values stored (via `insert` or `get_or_compute` misses).
    pub insertions: u64,
    /// Entries dropped from memory by the LRU bound.
    pub evictions: u64,
    /// Disk files that existed but failed to parse or decode (each is
    /// treated as a miss; the file is left for inspection).
    pub disk_corrupt: u64,
    /// Disk writes skipped because another process held the advisory
    /// lock for the same entry (the value is content-addressed, so the
    /// winner publishes an identical result).
    pub lock_contention: u64,
    /// Entries currently resident in memory.
    pub entries: usize,
}

impl CacheStats {
    /// Combined (memory + disk) hit ratio in `[0, 1]`.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.disk_hits + self.misses;
        if total == 0 {
            0.0
        } else {
            (self.hits + self.disk_hits) as f64 / total as f64
        }
    }
}

/// Bounded LRU keyed by `u64` digests: the map holds the value and its
/// last-use tick; the tick index finds the coldest entry in O(log n).
#[derive(Debug)]
struct Lru<V> {
    // lint-allow(hash-containers): probed by digest key only, never iterated
    map: HashMap<u64, (V, u64)>,
    by_tick: BTreeMap<u64, u64>,
    tick: u64,
    capacity: usize,
}

impl<V> Lru<V> {
    fn new(capacity: usize) -> Lru<V> {
        // lint-allow(hash-containers): probed by digest key only, never iterated
        Lru { map: HashMap::new(), by_tick: BTreeMap::new(), tick: 0, capacity: capacity.max(1) }
    }

    fn touch(&mut self, key: u64) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        let (value, old_tick) = self.map.get_mut(&key)?;
        self.by_tick.remove(old_tick);
        *old_tick = tick;
        self.by_tick.insert(tick, key);
        Some(value)
    }

    /// Inserts and returns how many entries were evicted to stay in
    /// bounds.
    fn insert(&mut self, key: u64, value: V) -> u64 {
        self.tick += 1;
        if let Some((_, old_tick)) = self.map.insert(key, (value, self.tick)) {
            self.by_tick.remove(&old_tick);
        }
        self.by_tick.insert(self.tick, key);
        let mut evicted = 0;
        while self.map.len() > self.capacity {
            // by_tick mirrors map one-to-one, so it cannot run out while
            // map is over capacity; break defensively instead of panicking.
            let Some((&coldest_tick, &coldest_key)) = self.by_tick.iter().next() else {
                break;
            };
            self.by_tick.remove(&coldest_tick);
            self.map.remove(&coldest_key);
            evicted += 1;
        }
        evicted
    }
}

/// A two-tier (memory LRU + optional disk) content-addressed cache.
///
/// # Examples
///
/// ```
/// use clapped_exec::ResultCache;
///
/// let cache: ResultCache<Vec<f64>> = ResultCache::in_memory(128);
/// let v = cache.get_or_compute(1234, || vec![1.0, 2.0]);
/// let w = cache.get_or_compute(1234, || unreachable!("warm"));
/// assert_eq!(v, w);
/// assert_eq!(cache.stats().hits, 1);
/// ```
#[derive(Debug)]
pub struct ResultCache<V> {
    lru: Mutex<Lru<V>>,
    disk_dir: Option<PathBuf>,
    salt: u64,
    lock_ttl: Duration,
    hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    disk_corrupt: AtomicU64,
    lock_contention: AtomicU64,
}

impl<V: Clone + CacheCodec> ResultCache<V> {
    /// A memory-only cache holding at most `capacity` entries.
    pub fn in_memory(capacity: usize) -> ResultCache<V> {
        ResultCache {
            lru: Mutex::new(Lru::new(capacity)),
            disk_dir: None,
            salt: 0,
            lock_ttl: DEFAULT_LOCK_TTL,
            hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            disk_corrupt: AtomicU64::new(0),
            lock_contention: AtomicU64::new(0),
        }
    }

    /// A cache with a persistent disk tier under `dir` (created on first
    /// write). Disk I/O failures are silently treated as misses — the
    /// cache is an accelerator, never a correctness dependency.
    pub fn with_disk(capacity: usize, dir: impl AsRef<Path>) -> ResultCache<V> {
        let mut cache = ResultCache::in_memory(capacity);
        cache.disk_dir = Some(dir.as_ref().to_path_buf());
        cache
    }

    /// Folds `salt` into every key, partitioning this cache's entries
    /// from any other salt's (use for code version + instance context).
    #[must_use]
    pub fn salted(mut self, salt: u64) -> ResultCache<V> {
        self.salt = self.salt.wrapping_add(mix64(salt));
        self
    }

    /// Replaces the advisory-lock expiry (default 30 s). A lock older
    /// than this is treated as the residue of a killed writer and
    /// broken; `Duration::ZERO` makes every pre-existing lock breakable
    /// (useful in tests).
    #[must_use]
    pub fn with_lock_ttl(mut self, ttl: Duration) -> ResultCache<V> {
        self.lock_ttl = ttl;
        self
    }

    /// Locks the LRU, recovering from poison: every mutation inside the
    /// critical sections below is panic-free plain-data bookkeeping, so a
    /// poisoned lock (a caller's panic unwound while holding a guard
    /// elsewhere on the thread, quarantined by DSE's `catch_unwind`)
    /// still protects a consistent structure.
    fn lru(&self) -> MutexGuard<'_, Lru<V>> {
        self.lru.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn mixed(&self, key: u64) -> u64 {
        mix64(key ^ self.salt)
    }

    fn disk_path(&self, mixed: u64) -> Option<PathBuf> {
        self.disk_dir.as_ref().map(|d| d.join(format!("{mixed:016x}.json")))
    }

    /// Reads the disk tier. A missing or unreadable file is an ordinary
    /// miss; a file that *reads* but fails to parse or decode (corrupt,
    /// truncated, foreign) is also a miss but additionally counted, so a
    /// damaged cache directory degrades performance — never correctness.
    fn disk_read(&self, mixed: u64) -> Option<V> {
        let text = std::fs::read_to_string(self.disk_path(mixed)?).ok()?;
        let decoded = serde_json::from_str(&text)
            .ok()
            .and_then(|value| V::from_cache_json(&value));
        if decoded.is_none() {
            self.disk_corrupt.fetch_add(1, Ordering::Relaxed);
            clapped_obs::count("exec.cache.disk_corrupt", 1);
        }
        decoded
    }

    fn lock_path(&self, mixed: u64) -> Option<PathBuf> {
        self.disk_dir.as_ref().map(|d| d.join(format!("{mixed:016x}.lock")))
    }

    /// Claims the advisory write lock with `create_new` (`O_EXCL`).
    /// Returns `false` when another live writer holds it; a lock file
    /// older than [`ResultCache::with_lock_ttl`] is the residue of a
    /// killed writer and is broken and re-claimed.
    fn claim_lock(&self, lock: &Path) -> bool {
        let try_claim = || {
            std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(lock)
                .map(|mut f| {
                    // Writer identity, for post-mortem inspection only.
                    let _ = write!(f, "{}", std::process::id());
                })
                .is_ok()
        };
        if try_claim() {
            return true;
        }
        // The lock exists. Its age comes from filesystem metadata — an
        // I/O-level liveness heuristic that only decides whether a
        // redundant write proceeds, never what any result is (values
        // are content-addressed, so every writer publishes the same
        // bytes).
        let expired = std::fs::metadata(lock)
            .and_then(|m| m.modified())
            .ok()
            .and_then(|t| t.elapsed().ok())
            .is_some_and(|age| age >= self.lock_ttl);
        if expired {
            let _ = std::fs::remove_file(lock);
            return try_claim();
        }
        false
    }

    /// Publishes `value` to the disk tier: advisory lock, hidden temp
    /// file, atomic rename. Concurrent processes writing the same entry
    /// coordinate through the lock (losers skip — the value is
    /// identical); readers racing a writer see either the complete old
    /// JSON, the complete new JSON, or no file — never a torn write.
    fn disk_write(&self, mixed: u64, value: &V) {
        let (Some(dir), Some(path)) = (self.disk_dir.as_ref(), self.disk_path(mixed)) else {
            return;
        };
        let Some(json) = value.to_cache_json() else {
            return; // unencodable (e.g. non-finite float): memory-only
        };
        let Ok(text) = serde_json::to_string(&json) else {
            return;
        };
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let Some(lock) = self.lock_path(mixed) else {
            return;
        };
        if !self.claim_lock(&lock) {
            self.lock_contention.fetch_add(1, Ordering::Relaxed);
            clapped_obs::count("exec.cache.lock_contention", 1);
            return;
        }
        let tmp = dir.join(format!(".{mixed:016x}.{}.tmp", std::process::id()));
        match std::fs::write(&tmp, text) {
            Ok(()) => {
                if std::fs::rename(&tmp, &path).is_err() {
                    let _ = std::fs::remove_file(&tmp);
                }
            }
            Err(_) => {
                let _ = std::fs::remove_file(&tmp);
            }
        }
        let _ = std::fs::remove_file(&lock);
    }

    /// Looks `key` up in memory, then disk. A disk hit is promoted into
    /// the memory tier.
    pub fn get(&self, key: u64) -> Option<V> {
        let mixed = self.mixed(key);
        {
            let mut lru = self.lru();
            if let Some(v) = lru.touch(mixed) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                clapped_obs::count("exec.cache.hit", 1);
                return Some(v.clone());
            }
        }
        if let Some(v) = self.disk_read(mixed) {
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            clapped_obs::count("exec.cache.disk_hit", 1);
            let evicted = self.lru().insert(mixed, v.clone());
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            clapped_obs::count("exec.cache.evict", evicted);
            return Some(v);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        clapped_obs::count("exec.cache.miss", 1);
        None
    }

    /// Stores `value` under `key` in both tiers.
    pub fn insert(&self, key: u64, value: V) {
        let mixed = self.mixed(key);
        self.insertions.fetch_add(1, Ordering::Relaxed);
        clapped_obs::count("exec.cache.insert", 1);
        self.disk_write(mixed, &value);
        let evicted = self.lru().insert(mixed, value);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        clapped_obs::count("exec.cache.evict", evicted);
    }

    /// Returns the cached value for `key`, computing and storing it on a
    /// miss. The computation runs **outside** the lock (evaluations are
    /// expensive and pure, so a racing duplicate computation is cheaper
    /// than serializing every evaluation behind one mutex — last write
    /// wins with an identical value).
    pub fn get_or_compute(&self, key: u64, compute: impl FnOnce() -> V) -> V {
        if let Some(v) = self.get(key) {
            return v;
        }
        let v = compute();
        self.insert(key, v.clone());
        v
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            disk_corrupt: self.disk_corrupt.load(Ordering::Relaxed),
            lock_contention: self.lock_contention.load(Ordering::Relaxed),
            entries: self.lru().map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_cache_skips_recompute() {
        let cache: ResultCache<f64> = ResultCache::in_memory(16);
        let mut computed = 0;
        let a = cache.get_or_compute(7, || {
            computed += 1;
            1.5
        });
        let b = cache.get_or_compute(7, || {
            computed += 1;
            unreachable!("warm entry must not recompute")
        });
        assert_eq!(a, b);
        assert_eq!(computed, 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
    }

    #[test]
    fn lru_evicts_coldest_first() {
        let cache: ResultCache<f64> = ResultCache::in_memory(2);
        cache.insert(1, 1.0);
        cache.insert(2, 2.0);
        assert_eq!(cache.get(1), Some(1.0)); // 2 is now coldest
        cache.insert(3, 3.0);
        assert_eq!(cache.get(2), None, "coldest entry evicted");
        assert_eq!(cache.get(1), Some(1.0));
        assert_eq!(cache.get(3), Some(3.0));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn salt_partitions_keys() {
        let plain: ResultCache<f64> = ResultCache::in_memory(8);
        let salted: ResultCache<f64> = ResultCache::in_memory(8).salted(99);
        plain.insert(5, 1.0);
        salted.insert(5, 2.0);
        // Same logical key, different salts → both caches keep their own value.
        assert_eq!(plain.get(5), Some(1.0));
        assert_eq!(salted.get(5), Some(2.0));
        assert_ne!(plain.mixed(5), salted.mixed(5));
    }

    #[test]
    fn disk_tier_survives_a_fresh_cache() {
        let dir = std::env::temp_dir().join(format!("clapped-exec-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let cache: ResultCache<Vec<f64>> = ResultCache::with_disk(8, &dir);
            cache.insert(42, vec![1.0, 2.5]);
        }
        let fresh: ResultCache<Vec<f64>> = ResultCache::with_disk(8, &dir);
        assert_eq!(fresh.get(42), Some(vec![1.0, 2.5]));
        let stats = fresh.stats();
        assert_eq!((stats.disk_hits, stats.hits), (1, 0));
        // Promoted into memory: second read is a memory hit.
        assert_eq!(fresh.get(42), Some(vec![1.0, 2.5]));
        assert_eq!(fresh.stats().hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_finite_values_stay_memory_only() {
        let dir =
            std::env::temp_dir().join(format!("clapped-exec-test-nan-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache: ResultCache<f64> = ResultCache::with_disk(8, &dir);
        cache.insert(1, f64::NAN);
        assert!(cache.get(1).map(f64::is_nan).unwrap_or(false));
        let fresh: ResultCache<f64> = ResultCache::with_disk(8, &dir);
        assert_eq!(fresh.get(1), None, "NaN must not round-trip through disk");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_disk_files_are_misses() {
        let dir =
            std::env::temp_dir().join(format!("clapped-exec-test-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cache: ResultCache<Vec<f64>> = ResultCache::with_disk(8, &dir);
        let mixed = cache.mixed(9);
        std::fs::write(dir.join(format!("{mixed:016x}.json")), "not json at all").unwrap();
        assert_eq!(cache.get(9), None);
        assert_eq!(cache.stats().disk_corrupt, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_writes_leave_no_temp_or_lock_residue() {
        let dir = std::env::temp_dir()
            .join(format!("clapped-exec-test-atomic-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache: ResultCache<Vec<f64>> = ResultCache::with_disk(8, &dir);
        for k in 0..6 {
            cache.insert(k, vec![k as f64, 0.5]);
        }
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names.len(), 6, "one published file per entry: {names:?}");
        assert!(
            names.iter().all(|n| n.ends_with(".json")),
            "no .tmp/.lock residue after writes: {names:?}"
        );
        assert_eq!(cache.stats().lock_contention, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn held_lock_skips_the_write_and_counts_contention() {
        let dir = std::env::temp_dir()
            .join(format!("clapped-exec-test-lock-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let cache: ResultCache<Vec<f64>> = ResultCache::with_disk(8, &dir);
        let mixed = cache.mixed(3);
        // Another (live) writer holds the advisory lock.
        std::fs::write(dir.join(format!("{mixed:016x}.lock")), "held").unwrap();
        cache.insert(3, vec![9.0]);
        assert_eq!(cache.stats().lock_contention, 1, "contended write is skipped");
        // The entry was not published, but memory still serves it.
        assert_eq!(cache.get(3), Some(vec![9.0]));
        let fresh: ResultCache<Vec<f64>> = ResultCache::with_disk(8, &dir);
        assert_eq!(fresh.get(3), None, "disk write was skipped under contention");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_locks_are_broken_after_the_ttl() {
        let dir = std::env::temp_dir()
            .join(format!("clapped-exec-test-stale-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // TTL zero: any pre-existing lock counts as a killed writer.
        let cache: ResultCache<Vec<f64>> =
            ResultCache::with_disk(8, &dir).with_lock_ttl(Duration::ZERO);
        let mixed = cache.mixed(4);
        let lock = dir.join(format!("{mixed:016x}.lock"));
        std::fs::write(&lock, "42").unwrap();
        cache.insert(4, vec![7.0, 8.0]);
        assert_eq!(cache.stats().lock_contention, 0, "stale lock is broken, not contended");
        assert!(!lock.exists(), "broken lock is cleaned up after the write");
        let fresh: ResultCache<Vec<f64>> = ResultCache::with_disk(8, &dir);
        assert_eq!(fresh.get(4), Some(vec![7.0, 8.0]), "write proceeded past the stale lock");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_writers_to_one_directory_never_tear_entries() {
        let dir = std::env::temp_dir()
            .join(format!("clapped-exec-test-race-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let value: Vec<f64> = (0..64).map(f64::from).collect();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let dir = &dir;
                let value = &value;
                scope.spawn(move || {
                    let cache: ResultCache<Vec<f64>> = ResultCache::with_disk(8, dir);
                    for round in 0..20 {
                        for key in 0..4 {
                            cache.insert(key, value.clone());
                            // A racing reader must see all-or-nothing.
                            let reader: ResultCache<Vec<f64>> =
                                ResultCache::with_disk(8, dir);
                            if let Some(v) = reader.get(key) {
                                assert_eq!(&v, value, "round {round}: torn read");
                            }
                            assert_eq!(
                                reader.stats().disk_corrupt,
                                0,
                                "round {round}: reader decoded a partial file"
                            );
                        }
                    }
                });
            }
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_entries_recover_via_recompute() {
        let dir = std::env::temp_dir()
            .join(format!("clapped-exec-test-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let writer: ResultCache<Vec<f64>> = ResultCache::with_disk(8, &dir);
            writer.insert(11, vec![4.0, 5.0]);
        }
        // Truncate the one on-disk entry mid-token so it no longer parses.
        let files: Vec<_> = std::fs::read_dir(&dir).unwrap().map(|e| e.unwrap().path()).collect();
        assert_eq!(files.len(), 1);
        std::fs::write(&files[0], "[4.0, 5.").unwrap();

        let fresh: ResultCache<Vec<f64>> = ResultCache::with_disk(8, &dir);
        assert_eq!(fresh.get(11), None, "corrupt entry must read as a miss, not panic");
        let stats = fresh.stats();
        assert_eq!((stats.disk_corrupt, stats.disk_hits, stats.misses), (1, 0, 1));
        // get_or_compute recovers and rewrites a valid entry.
        assert_eq!(fresh.get_or_compute(11, || vec![4.0, 5.0]), vec![4.0, 5.0]);
        let reread: ResultCache<Vec<f64>> = ResultCache::with_disk(8, &dir);
        assert_eq!(reread.get(11), Some(vec![4.0, 5.0]));
        assert_eq!(reread.stats().disk_corrupt, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
