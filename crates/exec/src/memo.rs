//! Unbounded concurrent memo table for compute-once-per-process
//! artifacts.
//!
//! Unlike [`crate::ResultCache`], a [`Memo`] never evicts and computes
//! **under the lock**, so a value is computed at most once per process
//! even when many threads race for the same key — exactly the contract
//! an operator behavioural table needs (a 65k-entry exhaustive netlist
//! simulation should never run twice for the same netlist).

// lint-allow-file(hash-containers): the memo table is generic over any
// `K: Hash` key and is only ever probed by key, never iterated.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Hit/miss counters of a [`Memo`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoStats {
    /// Lookups answered from the table.
    pub hits: u64,
    /// Lookups that had to compute the value.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
}

impl MemoStats {
    /// Hit ratio in `[0, 1]`; `0` when no lookups happened yet.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A concurrent, unbounded, compute-once memo table.
///
/// # Examples
///
/// ```
/// use clapped_exec::Memo;
///
/// let memo: Memo<u32, Vec<u32>> = Memo::new();
/// let v = memo.get_or_insert_with(3, || vec![3; 4]);
/// let w = memo.get_or_insert_with(3, || unreachable!("computed once"));
/// assert_eq!(v, w);
/// assert_eq!(memo.stats().hits, 1);
/// ```
#[derive(Debug)]
pub struct Memo<K, V> {
    table: Mutex<HashMap<K, V>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Eq + Hash + Clone, V: Clone> Default for Memo<K, V> {
    fn default() -> Self {
        Memo::new()
    }
}

impl<K: Eq + Hash + Clone, V: Clone> Memo<K, V> {
    /// An empty memo table.
    pub fn new() -> Memo<K, V> {
        Memo {
            table: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Locks the table, recovering from poison: a `compute` closure that
    /// panicked did so *before* its `insert`, so the table a poisoned
    /// lock protects is still consistent (the failed key is simply
    /// absent). DSE quarantines panicking evaluations with
    /// `catch_unwind`; the memo must stay usable afterwards.
    fn table(&self) -> MutexGuard<'_, HashMap<K, V>> {
        self.table.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns the memoized value for `key`, computing and storing it on
    /// first use. The computation runs while holding the table lock:
    /// strict once-per-process semantics, at the cost of serializing
    /// concurrent *misses*. Hits only briefly take the lock to clone.
    pub fn get_or_insert_with(&self, key: K, compute: impl FnOnce() -> V) -> V {
        let mut table = self.table();
        if let Some(v) = table.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            clapped_obs::count("exec.memo.hit", 1);
            return v.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        clapped_obs::count("exec.memo.miss", 1);
        let v = compute();
        table.insert(key, v.clone());
        v
    }

    /// Stores `value` for `key` unless an entry already exists, and
    /// returns the entry that ends up in the table. Unlike
    /// [`Memo::get_or_insert_with`] this never touches the hit/miss
    /// counters — it is the write half of a fallible-compute pattern
    /// (probe with [`Memo::get`], compute outside the lock, publish
    /// here), where the probe already recorded the miss and a racing
    /// duplicate insert must not be miscounted.
    pub fn insert_if_absent(&self, key: K, value: V) -> V {
        let mut table = self.table();
        table.entry(key).or_insert(value).clone()
    }

    /// Returns the memoized value for `key` without computing.
    pub fn get(&self, key: &K) -> Option<V> {
        let table = self.table();
        let found = table.get(key).cloned();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            clapped_obs::count("exec.memo.hit", 1);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            clapped_obs::count("exec.memo.miss", 1);
        }
        found
    }

    /// Current hit/miss/size counters.
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.table().len(),
        }
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        self.table().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn computes_each_key_once() {
        let memo: Memo<u32, u64> = Memo::new();
        let computed = AtomicU64::new(0);
        for _ in 0..10 {
            for k in 0..3u32 {
                let v = memo.get_or_insert_with(k, || {
                    computed.fetch_add(1, Ordering::Relaxed);
                    u64::from(k) * 100
                });
                assert_eq!(v, u64::from(k) * 100);
            }
        }
        assert_eq!(computed.load(Ordering::Relaxed), 3);
        let stats = memo.stats();
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 27);
        assert_eq!(stats.entries, 3);
    }

    #[test]
    fn once_per_process_under_contention() {
        let memo: Memo<u8, u64> = Memo::new();
        let computed = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        memo.get_or_insert_with(1, || {
                            computed.fetch_add(1, Ordering::Relaxed);
                            42
                        });
                    }
                });
            }
        });
        assert_eq!(computed.load(Ordering::Relaxed), 1, "strict once-per-process");
    }

    #[test]
    fn hit_ratio() {
        let memo: Memo<u8, u8> = Memo::new();
        assert_eq!(memo.stats().hit_ratio(), 0.0);
        memo.get_or_insert_with(1, || 1);
        memo.get_or_insert_with(1, || 1);
        assert!((memo.stats().hit_ratio() - 0.5).abs() < 1e-12);
    }
}
