//! The scoped-thread evaluation engine.
//!
//! [`Engine::evaluate_many`] fans a batch of independent jobs over a
//! work-sharing pool of scoped threads (an atomic next-job counter, so
//! fast workers steal the remaining items) and returns the results **in
//! input order** — the caller observes bit-identical output no matter
//! how many threads ran or how the OS scheduled them. Determinism
//! therefore reduces to the job function being a pure function of its
//! inputs; for jobs that need randomness, [`Engine::evaluate_many_seeded`]
//! hands each job an index-derived seed from the engine's base seed.

use crate::digest::mix64;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Runs one job, recording its latency into the `exec.job` histogram
/// and its duration into the `exec.worker.busy_ns` counter (from which
/// worker utilization = busy_ns / (workers × batch wall time) follows).
/// While observability is disabled this is just the call. Timing goes
/// through the `clapped-obs` stopwatch facade — only `clapped-obs`
/// touches the wall clock directly.
#[inline]
fn run_job<C, O>(f: &(impl Fn(usize, &C) -> O + ?Sized), i: usize, c: &C) -> O {
    if !clapped_obs::enabled() {
        return f(i, c);
    }
    let watch = clapped_obs::Stopwatch::start();
    let out = f(i, c);
    let ns = watch.elapsed_ns();
    clapped_obs::observe("exec.job", ns);
    clapped_obs::count("exec.worker.busy_ns", ns);
    out
}

/// Configuration of an [`Engine`]. The default (`jobs: 0, seed: 0`)
/// selects the host's available parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecConfig {
    /// Worker threads used per batch. `0` selects the host's available
    /// parallelism.
    pub jobs: usize,
    /// Base seed for deterministic per-job seeding.
    pub seed: u64,
}

impl ExecConfig {
    /// An explicit thread count (`0` = auto).
    pub fn with_jobs(jobs: usize) -> ExecConfig {
        ExecConfig { jobs, ..ExecConfig::default() }
    }

    /// Single-threaded execution (jobs run inline on the caller).
    pub fn serial() -> ExecConfig {
        ExecConfig::with_jobs(1)
    }

    /// Replaces the base seed.
    #[must_use]
    pub fn seeded(mut self, seed: u64) -> ExecConfig {
        self.seed = seed;
        self
    }
}

/// The deterministic seed handed to job `index` of a batch under
/// `base` — a SplitMix64 stream, so seeds are well spread even for
/// consecutive indices.
pub fn job_seed(base: u64, index: usize) -> u64 {
    mix64(base ^ mix64(index as u64 ^ 0x9e37_79b9_7f4a_7c15))
}

/// A batched parallel evaluation engine.
///
/// # Examples
///
/// ```
/// use clapped_exec::{Engine, ExecConfig};
///
/// let engine = Engine::new(ExecConfig::with_jobs(4));
/// let squares = engine.evaluate_many(&[1u64, 2, 3, 4], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
#[derive(Debug)]
pub struct Engine {
    jobs: usize,
    seed: u64,
    jobs_run: AtomicU64,
    batches_run: AtomicU64,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new(ExecConfig::default())
    }
}

impl Engine {
    /// Builds an engine; `config.jobs == 0` resolves to the host's
    /// available parallelism (at least 1).
    pub fn new(config: ExecConfig) -> Engine {
        let jobs = if config.jobs == 0 {
            std::thread::available_parallelism().map(usize::from).unwrap_or(1)
        } else {
            config.jobs
        };
        Engine {
            jobs: jobs.max(1),
            seed: config.seed,
            jobs_run: AtomicU64::new(0),
            batches_run: AtomicU64::new(0),
        }
    }

    /// A single-threaded engine (useful as a deterministic baseline).
    pub fn serial() -> Engine {
        Engine::new(ExecConfig::serial())
    }

    /// Worker threads used per batch.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The engine's base seed for per-job seeding.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Total jobs executed over this engine's lifetime.
    pub fn jobs_executed(&self) -> u64 {
        self.jobs_run.load(Ordering::Relaxed)
    }

    /// Total batches executed over this engine's lifetime.
    pub fn batches_executed(&self) -> u64 {
        self.batches_run.load(Ordering::Relaxed)
    }

    /// Evaluates `f(index, item)` for every item, in parallel, returning
    /// results in input order. The closure must be a pure function of
    /// its arguments for the output to be thread-count independent — the
    /// engine guarantees ordering, the closure guarantees values.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any job after the batch finishes
    /// unwinding (scoped-thread join semantics).
    pub fn evaluate_many<C, O, F>(&self, items: &[C], f: F) -> Vec<O>
    where
        C: Sync,
        O: Send,
        F: Fn(usize, &C) -> O + Sync,
    {
        self.batches_run.fetch_add(1, Ordering::Relaxed);
        self.jobs_run.fetch_add(items.len() as u64, Ordering::Relaxed);
        let _batch_span = clapped_obs::span("exec.batch");
        clapped_obs::observe("exec.batch.jobs", items.len() as u64);
        let workers = self.jobs.min(items.len());
        clapped_obs::gauge_set("exec.batch.workers", workers as f64);
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, c)| run_job(&f, i, c)).collect();
        }
        let next = AtomicUsize::new(0);
        let collected: Mutex<Vec<(usize, O)>> = Mutex::new(Vec::with_capacity(items.len()));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut local: Vec<(usize, O)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, run_job(&f, i, &items[i])));
                    }
                    // Recover from poison: a worker that panicked did so
                    // inside `run_job`, never while holding this lock,
                    // so the partial result vector is intact — and the
                    // scope re-raises the panic after joining anyway.
                    collected
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .append(&mut local);
                });
            }
        });
        let mut collected =
            collected.into_inner().unwrap_or_else(PoisonError::into_inner);
        collected.sort_by_key(|&(i, _)| i);
        collected.into_iter().map(|(_, o)| o).collect()
    }

    /// [`Engine::evaluate_many`] with a deterministic per-job seed:
    /// job `i` receives [`job_seed`]`(self.seed(), i)`. Identical seed +
    /// items yield identical outputs at any thread count.
    pub fn evaluate_many_seeded<C, O, F>(&self, items: &[C], f: F) -> Vec<O>
    where
        C: Sync,
        O: Send,
        F: Fn(usize, &C, u64) -> O + Sync,
    {
        let base = self.seed;
        self.evaluate_many(items, move |i, c| f(i, c, job_seed(base, i)))
    }

    /// Fallible batched evaluation: runs every job, then returns either
    /// all results (input order) or the error of the **lowest-indexed**
    /// failing job — so the reported error is also thread-count
    /// independent.
    ///
    /// # Errors
    ///
    /// The first (by input index) job error.
    pub fn try_evaluate_many<C, O, E, F>(&self, items: &[C], f: F) -> Result<Vec<O>, E>
    where
        C: Sync,
        O: Send,
        E: Send,
        F: Fn(usize, &C) -> Result<O, E> + Sync,
    {
        self.evaluate_many(items, f).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_are_in_input_order_at_any_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(x) ^ 0xA5).collect();
        for jobs in [1, 2, 3, 8, 64] {
            let engine = Engine::new(ExecConfig::with_jobs(jobs));
            let got = engine.evaluate_many(&items, |_, &x| x.wrapping_mul(x) ^ 0xA5);
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn seeded_jobs_are_thread_count_independent() {
        let items: Vec<u32> = (0..100).collect();
        let serial = Engine::new(ExecConfig::serial().seeded(42));
        let wide = Engine::new(ExecConfig::with_jobs(8).seeded(42));
        let a = serial.evaluate_many_seeded(&items, |_, &x, s| s ^ u64::from(x));
        let b = wide.evaluate_many_seeded(&items, |_, &x, s| s ^ u64::from(x));
        assert_eq!(a, b);
        // Different base seed changes every job seed.
        let other = Engine::new(ExecConfig::with_jobs(8).seeded(43));
        let c = other.evaluate_many_seeded(&items, |_, &x, s| s ^ u64::from(x));
        assert_ne!(a, c);
    }

    #[test]
    fn error_reporting_is_deterministic() {
        let items: Vec<usize> = (0..64).collect();
        let engine = Engine::new(ExecConfig::with_jobs(8));
        for _ in 0..8 {
            let r: Result<Vec<usize>, usize> =
                engine.try_evaluate_many(&items, |_, &x| if x % 7 == 3 { Err(x) } else { Ok(x) });
            assert_eq!(r.unwrap_err(), 3, "lowest-indexed failure wins");
        }
    }

    #[test]
    fn counters_track_work() {
        let engine = Engine::serial();
        engine.evaluate_many(&[1, 2, 3], |_, &x: &i32| x);
        engine.evaluate_many(&[1, 2], |_, &x: &i32| x);
        assert_eq!(engine.jobs_executed(), 5);
        assert_eq!(engine.batches_executed(), 2);
    }

    #[test]
    fn empty_batch_is_fine() {
        let engine = Engine::default();
        let out: Vec<u8> = engine.evaluate_many(&[] as &[u8], |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn all_jobs_run_exactly_once() {
        let engine = Engine::new(ExecConfig::with_jobs(6));
        let hits = AtomicU64::new(0);
        let items: Vec<usize> = (0..500).collect();
        let out = engine.evaluate_many(&items, |i, &x| {
            hits.fetch_add(1, Ordering::Relaxed);
            assert_eq!(i, x);
            x
        });
        assert_eq!(out.len(), 500);
        assert_eq!(hits.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn job_seed_spreads() {
        let s0 = job_seed(1, 0);
        let s1 = job_seed(1, 1);
        assert_ne!(s0, s1);
        assert_ne!(job_seed(1, 0), job_seed(2, 0));
        // Stable across calls (and, by construction, across processes).
        assert_eq!(job_seed(7, 9), job_seed(7, 9));
    }
}
