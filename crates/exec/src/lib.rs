//! Parallel evaluation engine with content-addressed result caching.
//!
//! CLAppED's exploration loops are embarrassingly parallel: every
//! candidate configuration's quality / hardware evaluation is an
//! independent pure function, and the same operator tables and design
//! points are recomputed over and over across a run. This crate is the
//! execution substrate the rest of the workspace stands on:
//!
//! - [`Engine`] — a std-only scoped-thread evaluation pool with a
//!   batched [`Engine::evaluate_many`] API and deterministic per-job
//!   seeding ([`Engine::evaluate_many_seeded`]). Results are returned in
//!   input order, so outcomes are **bit-identical at any thread count**.
//! - [`digest`] — a stable FNV-1a based content-digest toolkit
//!   ([`Fnv64`], [`Digestible`], [`StructDigest`]) whose struct digests
//!   are insensitive to field feeding order, plus the
//!   [`CODE_VERSION_SALT`] that invalidates persisted results when
//!   evaluation semantics change.
//! - [`ResultCache`] — a two-tier content-addressed result cache: an
//!   in-memory LRU backed by an optional on-disk JSON store (by
//!   convention under `results/cache/`), with hit/miss/eviction
//!   counters.
//! - [`Memo`] — an unbounded concurrent memo table with hit/miss
//!   counters, used for compute-once-per-process artifacts such as
//!   operator behavioural tables.
//!
//! Everything here is dependency-free std Rust (the disk tier uses the
//! vendored `serde_json`); determinism is a hard design requirement, not
//! a best-effort property.

mod cache;
pub mod digest;
mod memo;
mod pool;

pub use cache::{CacheCodec, CacheStats, ResultCache};
pub use digest::{digest_of, Digestible, Fnv64, StructDigest, CODE_VERSION_SALT};
pub use memo::{Memo, MemoStats};
pub use pool::{job_seed, Engine, ExecConfig};
