//! Stable content digests for cache addressing.
//!
//! The cache key of an evaluation result must be a pure function of the
//! *content* of the evaluated configuration — stable across processes,
//! platforms and runs (so the on-disk tier survives restarts), and
//! independent of incidental details like the order in which a caller
//! feeds struct fields. Rust's `std::hash::Hasher` deliberately makes no
//! such guarantee, so this module pins down a concrete algorithm:
//! 64-bit FNV-1a over a length-prefixed byte encoding, with an
//! order-insensitive commutative combiner for struct fields.

/// Code-version salt mixed into persisted cache keys.
///
/// Bump this constant whenever the *semantics* of any cached evaluation
/// change (application models, operator netlists, synthesis cost
/// models…): every persisted entry keyed under the old salt then misses,
/// so stale results can never be replayed into a newer build.
pub const CODE_VERSION_SALT: u64 = 0x434c_4150_5045_4401; // "CLAPPED" v01

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a streaming hasher with a fixed, documented encoding.
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// A fresh hasher at the standard FNV-1a offset basis.
    pub fn new() -> Fnv64 {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds a `u64` as little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds a string length-prefixed, so `("ab", "c")` and
    /// `("a", "bc")` digest differently.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// The digest of everything fed so far, finalized through an
    /// avalanche mixer so nearby inputs spread across the key space.
    pub fn finish(&self) -> u64 {
        mix64(self.state)
    }
}

/// SplitMix64 finalizer: full-avalanche 64-bit bijection.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Types with a stable content encoding into a [`Fnv64`] stream.
///
/// Implementations must feed every behaviour-relevant field and must be
/// stable across runs — no addresses, no iteration over unordered maps.
pub trait Digestible {
    /// Feeds this value's content into the hasher.
    fn feed(&self, h: &mut Fnv64);
}

/// Digest of a single value: a fresh hasher fed once and finished.
pub fn digest_of<T: Digestible + ?Sized>(value: &T) -> u64 {
    let mut h = Fnv64::new();
    value.feed(&mut h);
    h.finish()
}

macro_rules! digest_as_u64 {
    ($($t:ty),*) => {$(
        impl Digestible for $t {
            fn feed(&self, h: &mut Fnv64) {
                h.write_u64(*self as u64);
            }
        }
    )*};
}

digest_as_u64!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Digestible for bool {
    fn feed(&self, h: &mut Fnv64) {
        h.write_u64(u64::from(*self));
    }
}

impl Digestible for f64 {
    fn feed(&self, h: &mut Fnv64) {
        // Normalize -0.0 so numerically equal keys digest equally.
        let v = if *self == 0.0 { 0.0f64 } else { *self };
        h.write_u64(v.to_bits());
    }
}

impl Digestible for str {
    fn feed(&self, h: &mut Fnv64) {
        h.write_str(self);
    }
}

impl Digestible for String {
    fn feed(&self, h: &mut Fnv64) {
        h.write_str(self);
    }
}

impl<T: Digestible> Digestible for [T] {
    fn feed(&self, h: &mut Fnv64) {
        h.write_u64(self.len() as u64);
        for v in self {
            v.feed(h);
        }
    }
}

impl<T: Digestible> Digestible for Vec<T> {
    fn feed(&self, h: &mut Fnv64) {
        self.as_slice().feed(h);
    }
}

impl<T: Digestible> Digestible for Option<T> {
    fn feed(&self, h: &mut Fnv64) {
        match self {
            None => h.write_u64(0),
            Some(v) => {
                h.write_u64(1);
                v.feed(h);
            }
        }
    }
}

impl<T: Digestible + ?Sized> Digestible for &T {
    fn feed(&self, h: &mut Fnv64) {
        (**self).feed(h);
    }
}

/// Order-insensitive struct digest builder.
///
/// Each `(name, value)` field is hashed independently and combined with
/// a commutative `wrapping_add`, so the digest does not depend on the
/// order fields are fed in — two call sites (or two code versions that
/// reorder fields) produce the same key for the same content. Field
/// *names* participate in each field's hash, so swapping the values of
/// two fields still changes the digest.
///
/// # Examples
///
/// ```
/// use clapped_exec::StructDigest;
///
/// let a = StructDigest::new("config").field("x", &1u32).field("y", &2u32).finish();
/// let b = StructDigest::new("config").field("y", &2u32).field("x", &1u32).finish();
/// let c = StructDigest::new("config").field("x", &2u32).field("y", &1u32).finish();
/// assert_eq!(a, b);
/// assert_ne!(a, c);
/// ```
#[derive(Debug, Clone)]
pub struct StructDigest {
    tag: u64,
    acc: u64,
    fields: u64,
}

impl StructDigest {
    /// Starts a digest for the struct type named `tag`.
    pub fn new(tag: &str) -> StructDigest {
        StructDigest { tag: digest_of(tag), acc: 0, fields: 0 }
    }

    /// Feeds one named field. Order of `field` calls does not affect the
    /// final digest.
    #[must_use]
    pub fn field(mut self, name: &str, value: &(impl Digestible + ?Sized)) -> StructDigest {
        let mut h = Fnv64::new();
        h.write_str(name);
        value.feed(&mut h);
        self.acc = self.acc.wrapping_add(mix64(h.finish()));
        self.fields += 1;
        self
    }

    /// Finalizes the struct digest.
    pub fn finish(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(self.tag);
        h.write_u64(self.fields);
        h.write_u64(self.acc);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a test vectors, pre-finalizer.
        let mut h = Fnv64::new();
        h.write(b"a");
        assert_eq!(h.state, 0xaf63dc4c8601ec8c);
        let mut h = Fnv64::new();
        h.write(b"foobar");
        assert_eq!(h.state, 0x85944171f73967e8);
    }

    #[test]
    fn length_prefix_disambiguates_strings() {
        let mut a = Fnv64::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn struct_digest_is_order_insensitive_but_name_sensitive() {
        let ab = StructDigest::new("t").field("a", &7u64).field("b", &9u64).finish();
        let ba = StructDigest::new("t").field("b", &9u64).field("a", &7u64).finish();
        let swapped = StructDigest::new("t").field("a", &9u64).field("b", &7u64).finish();
        assert_eq!(ab, ba);
        assert_ne!(ab, swapped);
        assert_ne!(ab, StructDigest::new("u").field("a", &7u64).field("b", &9u64).finish());
    }

    #[test]
    fn negative_zero_normalizes() {
        assert_eq!(digest_of(&0.0f64), digest_of(&(-0.0f64)));
        assert_ne!(digest_of(&0.0f64), digest_of(&1.0f64));
    }

    #[test]
    fn slices_are_length_prefixed() {
        let a: Vec<u32> = vec![1, 2];
        let b: Vec<u32> = vec![1, 2, 0];
        assert_ne!(digest_of(&a), digest_of(&b));
    }
}
