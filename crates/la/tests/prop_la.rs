//! Property tests for the linear-algebra kernel.

use clapped_la::{Cholesky, Mat, Standardizer};
use proptest::prelude::*;

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-10.0f64..10.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// (A B) v == A (B v) for random small matrices.
    #[test]
    fn matmul_is_associative_with_matvec(
        a in finite_vec(9), b in finite_vec(9), v in finite_vec(3)
    ) {
        let ma = Mat::from_vec(3, 3, a);
        let mb = Mat::from_vec(3, 3, b);
        let ab = ma.matmul(&mb).expect("dims");
        let left = ab.matvec(&v).expect("dims");
        let bv = mb.matvec(&v).expect("dims");
        let right = ma.matvec(&bv).expect("dims");
        for (x, y) in left.iter().zip(&right) {
            prop_assert!((x - y).abs() < 1e-9, "{} vs {}", x, y);
        }
    }

    /// Transpose is an involution and reverses shapes.
    #[test]
    fn transpose_involution(data in finite_vec(12)) {
        let m = Mat::from_vec(3, 4, data);
        let t = m.transpose();
        prop_assert_eq!(t.rows(), 4);
        prop_assert_eq!(t.cols(), 3);
        prop_assert_eq!(t.transpose(), m);
    }

    /// Least squares on consistent systems recovers the coefficients.
    #[test]
    fn lstsq_recovers_planted_solution(coeffs in finite_vec(3)) {
        // A deterministic well-conditioned 8x3 design matrix.
        let a = Mat::from_fn(8, 3, |i, j| {
            ((i + 1) as f64).powi(j as i32) / 8f64.powi(j as i32)
        });
        let b = a.matvec(&coeffs).expect("dims");
        let x = a.lstsq(&b).expect("full rank");
        for (got, want) in x.iter().zip(&coeffs) {
            prop_assert!((got - want).abs() < 1e-6, "{} vs {}", got, want);
        }
    }

    /// Cholesky solves SPD systems built as A^T A + I.
    #[test]
    fn cholesky_solves_spd(data in finite_vec(12), rhs in finite_vec(3)) {
        let a = Mat::from_vec(4, 3, data);
        let mut g = a.gram();
        for i in 0..3 {
            g[(i, i)] += 1.0;
        }
        let ch = Cholesky::factor(&g).expect("SPD by construction");
        let x = ch.solve(&rhs).expect("dims");
        let back = g.matvec(&x).expect("dims");
        for (got, want) in back.iter().zip(&rhs) {
            prop_assert!((got - want).abs() < 1e-7, "{} vs {}", got, want);
        }
    }

    /// Standardize → inverse is the identity.
    #[test]
    fn standardizer_roundtrips(rows in proptest::collection::vec(finite_vec(4), 2..20)) {
        let st = Standardizer::fit(&rows);
        for row in &rows {
            let t = st.transform_row(row);
            let back = st.inverse_row(&t);
            for (got, want) in back.iter().zip(row) {
                prop_assert!((got - want).abs() < 1e-9);
            }
        }
    }

    /// Gram matrices are symmetric positive semidefinite (v' G v >= 0).
    #[test]
    fn gram_is_psd(data in finite_vec(12), v in finite_vec(3)) {
        let a = Mat::from_vec(4, 3, data);
        let g = a.gram();
        for i in 0..3 {
            for j in 0..3 {
                prop_assert!((g[(i, j)] - g[(j, i)]).abs() < 1e-12);
            }
        }
        let gv = g.matvec(&v).expect("dims");
        let quad: f64 = v.iter().zip(&gv).map(|(x, y)| x * y).sum();
        prop_assert!(quad >= -1e-9, "v'Gv = {}", quad);
    }
}
