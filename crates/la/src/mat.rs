//! Dense row-major matrix type.

use crate::{LaError, Result};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major matrix of `f64` values.
///
/// `Mat` is intentionally minimal: it supports exactly the operations the
/// CLAppED numerical stack needs (construction, element access, transpose,
/// matrix products, and factorizations exposed through [`crate::Qr`] and
/// [`crate::Cholesky`]).
///
/// # Examples
///
/// ```
/// use clapped_la::Mat;
///
/// let m = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(m[(1, 0)], 3.0);
/// assert_eq!(m.transpose()[(0, 1)], 3.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows.checked_mul(cols).expect("matrix size overflow");
        Mat {
            rows,
            cols,
            data: vec![0.0; len],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not all have the same length.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        if rows.is_empty() {
            return Mat::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have equal length");
            data.extend_from_slice(r);
        }
        Mat {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Mat { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Mat::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrows the underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index out of bounds");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "column index out of bounds");
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Returns the transpose of `self`.
    pub fn transpose(&self) -> Mat {
        let mut t = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix–matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LaError::DimensionMismatch`] if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Mat) -> Result<Mat> {
        if self.cols != rhs.rows {
            return Err(LaError::DimensionMismatch {
                expected: format!("rhs with {} rows", self.cols),
                found: format!("rhs with {} rows", rhs.rows),
            });
        }
        let mut out = Mat::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rrow = rhs.row(k);
                let orow = out.row_mut(i);
                for (o, &r) in orow.iter_mut().zip(rrow) {
                    *o += a * r;
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`LaError::DimensionMismatch`] if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(LaError::DimensionMismatch {
                expected: format!("vector of length {}", self.cols),
                found: format!("vector of length {}", v.len()),
            });
        }
        Ok((0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Adds `rhs` element-wise.
    ///
    /// # Errors
    ///
    /// Returns [`LaError::DimensionMismatch`] on shape mismatch.
    pub fn add(&self, rhs: &Mat) -> Result<Mat> {
        self.zip_with(rhs, |a, b| a + b)
    }

    /// Subtracts `rhs` element-wise.
    ///
    /// # Errors
    ///
    /// Returns [`LaError::DimensionMismatch`] on shape mismatch.
    pub fn sub(&self, rhs: &Mat) -> Result<Mat> {
        self.zip_with(rhs, |a, b| a - b)
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f64) -> Mat {
        let mut out = self.clone();
        for v in &mut out.data {
            *v *= s;
        }
        out
    }

    /// Computes `self^T * self` (the Gram matrix) without materializing
    /// the transpose.
    pub fn gram(&self) -> Mat {
        let mut g = Mat::zeros(self.cols, self.cols);
        for i in 0..self.rows {
            let r = self.row(i);
            for a in 0..self.cols {
                let ra = r[a];
                if ra == 0.0 {
                    continue;
                }
                for b in a..self.cols {
                    g[(a, b)] += ra * r[b];
                }
            }
        }
        for a in 0..self.cols {
            for b in 0..a {
                g[(a, b)] = g[(b, a)];
            }
        }
        g
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Solves the least-squares problem `min ||self * x - b||` via
    /// Householder QR.
    ///
    /// # Errors
    ///
    /// Returns [`LaError::DimensionMismatch`] if `b.len() != self.rows()`,
    /// and [`LaError::Singular`] if the matrix is rank deficient.
    pub fn lstsq(&self, b: &[f64]) -> Result<Vec<f64>> {
        crate::Qr::factor(self).and_then(|qr| qr.solve(b))
    }

    fn zip_with(&self, rhs: &Mat, f: impl Fn(f64, f64) -> f64) -> Result<Mat> {
        if self.rows != rhs.rows || self.cols != rhs.cols {
            return Err(LaError::DimensionMismatch {
                expected: format!("{}x{}", self.rows, self.cols),
                found: format!("{}x{}", rhs.rows, rhs.cols),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Mat {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", self.row(i))?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Mat::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Mat::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
    }

    #[test]
    fn matmul_small() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn matmul_dim_mismatch() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LaError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn matvec_works() {
        let a = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]);
        let v = a.matvec(&[3.0, 4.0]).unwrap();
        assert_eq!(v, vec![3.0, 8.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn gram_matches_explicit() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let g = a.gram();
        let g2 = a.transpose().matmul(&a).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!((g[(i, j)] - g2[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn add_sub_scale() {
        let a = Mat::from_rows(&[&[1.0, 2.0]]);
        let b = Mat::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[4.0, 6.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[2.0, 2.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let a = Mat::zeros(1, 1);
        let _ = a[(1, 0)];
    }
}
