//! Small statistics helpers shared across the workspace.

/// Arithmetic mean of a slice; returns `0.0` for an empty slice.
///
/// # Examples
///
/// ```
/// assert_eq!(clapped_la::mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance of a slice; returns `0.0` for slices shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn population_std(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Standardizes `xs` in place to zero mean and unit variance.
///
/// Returns the `(mean, std)` used. If the standard deviation is zero the
/// values are only centred (scale 1 is used) so the operation is always
/// invertible.
pub fn standardize_in_place(xs: &mut [f64]) -> (f64, f64) {
    let m = mean(xs);
    let s = population_std(xs);
    let scale = if s > 0.0 { s } else { 1.0 };
    for x in xs.iter_mut() {
        *x = (*x - m) / scale;
    }
    (m, scale)
}

/// Per-column feature standardizer (z-score) for design matrices stored as
/// rows of feature vectors.
///
/// Columns with zero variance are centred but not scaled, so
/// [`Standardizer::transform`] never divides by zero.
///
/// # Examples
///
/// ```
/// use clapped_la::Standardizer;
///
/// let rows = vec![vec![0.0, 10.0], vec![2.0, 10.0], vec![4.0, 10.0]];
/// let st = Standardizer::fit(&rows);
/// let t = st.transform_row(&rows[0]);
/// assert!((t[0] + 1.2247).abs() < 1e-3); // (0-2)/std
/// assert_eq!(t[1], 0.0); // constant column is centred only
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    means: Vec<f64>,
    scales: Vec<f64>,
}

impl Standardizer {
    /// Fits a standardizer on a set of feature rows.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have inconsistent lengths.
    pub fn fit(rows: &[Vec<f64>]) -> Standardizer {
        assert!(!rows.is_empty(), "cannot fit a standardizer on no data");
        let dim = rows[0].len();
        let mut means = vec![0.0; dim];
        for row in rows {
            assert_eq!(row.len(), dim, "inconsistent feature dimension");
            for (m, &v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= rows.len() as f64;
        }
        let mut vars = vec![0.0; dim];
        for row in rows {
            for ((v, &x), &m) in vars.iter_mut().zip(row).zip(&means) {
                *v += (x - m) * (x - m);
            }
        }
        let scales = vars
            .iter()
            .map(|v| {
                let s = (v / rows.len() as f64).sqrt();
                if s > 0.0 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        Standardizer { means, scales }
    }

    /// Number of features this standardizer was fitted on.
    pub fn dim(&self) -> usize {
        self.means.len()
    }

    /// Transforms one feature row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.dim()`.
    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.dim(), "feature dimension mismatch");
        row.iter()
            .zip(self.means.iter().zip(&self.scales))
            .map(|(&x, (&m, &s))| (x - m) / s)
            .collect()
    }

    /// Transforms a batch of rows.
    pub fn transform(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        rows.iter().map(|r| self.transform_row(r)).collect()
    }

    /// Inverse-transforms one row back to the original feature space.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.dim()`.
    pub fn inverse_row(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.dim(), "feature dimension mismatch");
        row.iter()
            .zip(self.means.iter().zip(&self.scales))
            .map(|(&x, (&m, &s))| x * s + m)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert!((variance(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
        assert!((population_std(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn standardize_in_place_roundtrip() {
        let mut xs = vec![1.0, 2.0, 3.0, 4.0];
        let (m, s) = standardize_in_place(&mut xs);
        assert!((mean(&xs)).abs() < 1e-12);
        assert!((population_std(&xs) - 1.0).abs() < 1e-12);
        let back: Vec<f64> = xs.iter().map(|x| x * s + m).collect();
        assert!((back[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn standardizer_roundtrip() {
        let rows = vec![vec![1.0, 5.0], vec![3.0, 5.0], vec![5.0, 5.0]];
        let st = Standardizer::fit(&rows);
        let t = st.transform(&rows);
        let back = st.inverse_row(&t[2]);
        assert!((back[0] - 5.0).abs() < 1e-12);
        assert!((back[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn constant_column_is_safe() {
        let rows = vec![vec![7.0], vec![7.0]];
        let st = Standardizer::fit(&rows);
        let t = st.transform_row(&[7.0]);
        assert_eq!(t[0], 0.0);
    }

    #[test]
    #[should_panic(expected = "feature dimension mismatch")]
    fn transform_wrong_dim_panics() {
        let st = Standardizer::fit(&[vec![1.0, 2.0]]);
        let _ = st.transform_row(&[1.0]);
    }
}
