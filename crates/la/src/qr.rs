//! Householder QR factorization and least-squares solving.

use crate::{LaError, Mat, Result};

/// A Householder QR factorization of an `m × n` matrix with `m >= n`.
///
/// The factorization is stored compactly: the upper triangle of the
/// internal matrix holds `R`, while the Householder vectors live below the
/// diagonal. Use [`Qr::solve`] to solve least-squares problems against the
/// factored matrix.
///
/// # Examples
///
/// ```
/// use clapped_la::{Mat, Qr};
///
/// let a = Mat::from_rows(&[&[2.0, 0.0], &[0.0, 3.0], &[0.0, 0.0]]);
/// let qr = Qr::factor(&a).unwrap();
/// let x = qr.solve(&[4.0, 9.0, 0.0]).unwrap();
/// assert!((x[0] - 2.0).abs() < 1e-12);
/// assert!((x[1] - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Qr {
    /// Packed factorization (Householder vectors below diagonal, R above).
    qt: Mat,
    /// Scalar tau for each Householder reflector.
    betas: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Qr {
    /// Factors matrix `a`.
    ///
    /// # Errors
    ///
    /// Returns [`LaError::DimensionMismatch`] if `a` has fewer rows than
    /// columns (the underdetermined case is not supported).
    pub fn factor(a: &Mat) -> Result<Qr> {
        let (m, n) = (a.rows(), a.cols());
        if m < n {
            return Err(LaError::DimensionMismatch {
                expected: format!("at least {n} rows"),
                found: format!("{m} rows"),
            });
        }
        let mut r = a.clone();
        let mut betas = Vec::with_capacity(n);
        for k in 0..n {
            // Build the Householder reflector v for column k, copied out so
            // that applying it to column k does not corrupt it.
            let mut norm2 = 0.0;
            for i in k..m {
                norm2 += r[(i, k)] * r[(i, k)];
            }
            if norm2 == 0.0 {
                betas.push(0.0);
                continue;
            }
            let norm = norm2.sqrt();
            let alpha = if r[(k, k)] >= 0.0 { -norm } else { norm };
            let mut v = vec![0.0; m - k];
            v[0] = r[(k, k)] - alpha;
            for i in (k + 1)..m {
                v[i - k] = r[(i, k)];
            }
            let vtv: f64 = v.iter().map(|x| x * x).sum();
            if vtv == 0.0 {
                betas.push(0.0);
                continue;
            }
            let beta = 2.0 / vtv;
            // Apply the reflector to columns k..n.
            for j in k..n {
                let mut dot = 0.0;
                for i in k..m {
                    dot += v[i - k] * r[(i, j)];
                }
                let s = beta * dot;
                for i in k..m {
                    r[(i, j)] -= s * v[i - k];
                }
            }
            // Store v normalized so v0 == 1 below the diagonal and fold the
            // scale into beta, so solve() can reconstruct the reflector.
            let v0 = v[0];
            for i in (k + 1)..m {
                r[(i, k)] = v[i - k] / v0;
            }
            betas.push(beta * v0 * v0);
        }
        Ok(Qr {
            qt: r,
            betas,
            rows: m,
            cols: n,
        })
    }

    /// Returns the upper-triangular factor `R` (size `n × n`).
    pub fn r(&self) -> Mat {
        let n = self.cols;
        Mat::from_fn(n, n, |i, j| if j >= i { self.qt[(i, j)] } else { 0.0 })
    }

    /// Solves the least-squares problem `min ||A x - b||`.
    ///
    /// # Errors
    ///
    /// Returns [`LaError::DimensionMismatch`] if `b.len()` differs from the
    /// factored matrix's row count, or [`LaError::Singular`] if `R` has a
    /// (numerically) zero diagonal entry.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != self.rows {
            return Err(LaError::DimensionMismatch {
                expected: format!("vector of length {}", self.rows),
                found: format!("vector of length {}", b.len()),
            });
        }
        let (m, n) = (self.rows, self.cols);
        let mut y = b.to_vec();
        // Apply Q^T to b: for each reflector k, y -= beta * v (v^T y) with
        // v = [1, qt[k+1.., k]].
        for k in 0..n {
            let beta = self.betas[k];
            if beta == 0.0 {
                continue;
            }
            let mut dot = y[k];
            for i in (k + 1)..m {
                dot += self.qt[(i, k)] * y[i];
            }
            let s = beta * dot;
            y[k] -= s;
            for i in (k + 1)..m {
                y[i] -= s * self.qt[(i, k)];
            }
        }
        // Back substitution on R x = y[0..n].
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= self.qt[(i, j)] * x[j];
            }
            let d = self.qt[(i, i)];
            if d.abs() < 1e-12 {
                return Err(LaError::Singular);
            }
            x[i] = acc / d;
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn solves_exact_square_system() {
        let a = Mat::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]);
        let qr = Qr::factor(&a).unwrap();
        let x = qr.solve(&[9.0, 8.0]).unwrap();
        assert_close(&x, &[2.0, 3.0], 1e-10);
    }

    #[test]
    fn solves_overdetermined_least_squares() {
        // Fit y = 1 + 2t at t = 0,1,2,3 with noise-free data.
        let a = Mat::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]);
        let b = [1.0, 3.0, 5.0, 7.0];
        let x = a.lstsq(&b).unwrap();
        assert_close(&x, &[1.0, 2.0], 1e-10);
    }

    #[test]
    fn least_squares_minimizes_residual() {
        let a = Mat::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]);
        let b = [0.0, 1.0, 3.0];
        let x = a.lstsq(&b).unwrap();
        // Perturbing the solution should not decrease the residual.
        let resid = |x: &[f64]| -> f64 {
            let ax = a.matvec(x).unwrap();
            ax.iter().zip(&b).map(|(p, q)| (p - q).powi(2)).sum()
        };
        let base = resid(&x);
        for d in [1e-3, -1e-3] {
            assert!(resid(&[x[0] + d, x[1]]) >= base - 1e-12);
            assert!(resid(&[x[0], x[1] + d]) >= base - 1e-12);
        }
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a = Mat::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let qr = Qr::factor(&a).unwrap();
        assert!(matches!(qr.solve(&[1.0, 2.0, 3.0]), Err(LaError::Singular)));
    }

    #[test]
    fn underdetermined_rejected() {
        let a = Mat::zeros(1, 2);
        assert!(matches!(
            Qr::factor(&a),
            Err(LaError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let qr = Qr::factor(&a).unwrap();
        let r = qr.r();
        assert_eq!(r[(1, 0)], 0.0);
    }

    #[test]
    fn wrong_rhs_length_rejected() {
        let a = Mat::identity(2);
        let qr = Qr::factor(&a).unwrap();
        assert!(matches!(
            qr.solve(&[1.0]),
            Err(LaError::DimensionMismatch { .. })
        ));
    }
}
