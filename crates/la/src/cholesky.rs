//! Cholesky factorization for symmetric positive-definite matrices.

use crate::{LaError, Mat, Result};

/// Lower-triangular Cholesky factor `L` with `A = L L^T`.
///
/// Used by the Gaussian-process surrogate in the DSE crate, where the
/// kernel matrix is symmetric positive definite (after jitter).
///
/// # Examples
///
/// ```
/// use clapped_la::{Cholesky, Mat};
///
/// let a = Mat::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
/// let ch = Cholesky::factor(&a).unwrap();
/// let x = ch.solve(&[8.0, 7.0]).unwrap();
/// assert!((x[0] - 1.25).abs() < 1e-12);
/// assert!((x[1] - 1.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Mat,
}

impl Cholesky {
    /// Factors the symmetric positive-definite matrix `a`.
    ///
    /// Only the lower triangle of `a` is read.
    ///
    /// # Errors
    ///
    /// Returns [`LaError::DimensionMismatch`] if `a` is not square and
    /// [`LaError::NotPositiveDefinite`] if a non-positive pivot occurs.
    pub fn factor(a: &Mat) -> Result<Cholesky> {
        let n = a.rows();
        if a.cols() != n {
            return Err(LaError::DimensionMismatch {
                expected: "square matrix".to_string(),
                found: format!("{}x{}", a.rows(), a.cols()),
            });
        }
        let mut l = Mat::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LaError::NotPositiveDefinite);
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Factors `a + jitter·I`, escalating the jitter by ×10 on each
    /// failed attempt until the factorization succeeds or `max_attempts`
    /// is exhausted. Returns the factorization together with the jitter
    /// that made it succeed (`0.0` when `a` factors as-is: the first
    /// attempt adds nothing).
    ///
    /// This is the standard remedy for numerically semi-definite kernel
    /// matrices — e.g. a GP kernel over duplicated or near-duplicate
    /// design points — where a fixed nugget is either too small to help
    /// or large enough to distort well-conditioned problems.
    ///
    /// # Errors
    ///
    /// Returns [`LaError::DimensionMismatch`] if `a` is not square and
    /// [`LaError::NotPositiveDefinite`] if every attempted jitter fails.
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts` is zero or `initial_jitter` is not a
    /// positive finite number.
    pub fn factor_with_jitter(
        a: &Mat,
        initial_jitter: f64,
        max_attempts: usize,
    ) -> Result<(Cholesky, f64)> {
        assert!(max_attempts >= 1, "need at least one attempt");
        assert!(
            initial_jitter.is_finite() && initial_jitter > 0.0,
            "initial jitter must be positive and finite"
        );
        match Cholesky::factor(a) {
            Ok(ch) => return Ok((ch, 0.0)),
            Err(e @ LaError::DimensionMismatch { .. }) => return Err(e),
            Err(_) => {}
        }
        let n = a.rows();
        let mut jitter = initial_jitter;
        for _ in 0..max_attempts {
            let mut damped = a.clone();
            for i in 0..n {
                damped[(i, i)] += jitter;
            }
            if let Ok(ch) = Cholesky::factor(&damped) {
                return Ok((ch, jitter));
            }
            jitter *= 10.0;
        }
        Err(LaError::NotPositiveDefinite)
    }

    /// Borrows the lower-triangular factor `L`.
    pub fn l(&self) -> &Mat {
        &self.l
    }

    /// Solves `A x = b` using the factorization.
    ///
    /// # Errors
    ///
    /// Returns [`LaError::DimensionMismatch`] if `b.len()` differs from the
    /// matrix dimension.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x)?;
        Ok(x)
    }

    /// Solves `A x = b` in place, overwriting `b` with `x` and allocating
    /// nothing. Both substitution sweeps run in the single buffer: each
    /// forward entry depends only on earlier (already finalized) entries
    /// and each backward entry only on later ones, so the result is
    /// bitwise identical to the two-buffer formulation.
    ///
    /// # Errors
    ///
    /// Returns [`LaError::DimensionMismatch`] if `b.len()` differs from the
    /// matrix dimension.
    pub fn solve_in_place(&self, b: &mut [f64]) -> Result<()> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LaError::DimensionMismatch {
                expected: format!("vector of length {n}"),
                found: format!("vector of length {}", b.len()),
            });
        }
        // Forward substitution L y = b.
        for i in 0..n {
            let mut acc = b[i];
            for k in 0..i {
                acc -= self.l[(i, k)] * b[k];
            }
            b[i] = acc / self.l[(i, i)];
        }
        // Back substitution L^T x = y.
        for i in (0..n).rev() {
            let mut acc = b[i];
            for k in (i + 1)..n {
                acc -= self.l[(k, i)] * b[k];
            }
            b[i] = acc / self.l[(i, i)];
        }
        Ok(())
    }

    /// Solves `A X = B` for many right-hand sides packed contiguously in
    /// `rhs` (each consecutive `n` entries is one vector), in place.
    ///
    /// The substitution sweeps are *blocked*: the factor `L` is walked
    /// once, each entry applied to every right-hand side through a
    /// contiguous inner loop, instead of re-streaming the whole factor
    /// per vector as a [`Cholesky::solve_in_place`] loop would. For each
    /// individual right-hand side the floating-point operations and
    /// their order are exactly the single-vector solve's, so results are
    /// bitwise identical — the blocking only changes memory traffic,
    /// which is what makes batched GP acquisition prediction faster than
    /// per-candidate solving.
    ///
    /// # Errors
    ///
    /// Returns [`LaError::DimensionMismatch`] if `rhs.len()` is not a
    /// multiple of the matrix dimension.
    pub fn solve_many(&self, rhs: &mut [f64]) -> Result<()> {
        let n = self.l.rows();
        if n == 0 || !rhs.len().is_multiple_of(n) {
            return Err(LaError::DimensionMismatch {
                expected: format!("buffer of a multiple of {n} entries"),
                found: format!("buffer of {} entries", rhs.len()),
            });
        }
        let m = rhs.len() / n;
        if m <= 1 {
            if m == 1 {
                self.solve_in_place(rhs)?;
            }
            return Ok(());
        }
        // Transpose to component-major scratch: t[k*m + j] = rhs_j[k],
        // so one factor entry broadcasts over a contiguous run.
        let mut t = vec![0.0; rhs.len()];
        for (j, b) in rhs.chunks_exact(n).enumerate() {
            for (k, &v) in b.iter().enumerate() {
                t[k * m + j] = v;
            }
        }
        // Forward substitution L Y = B, all columns at once.
        for i in 0..n {
            let (done, rest) = t.split_at_mut(i * m);
            let yi = &mut rest[..m];
            for k in 0..i {
                let lik = self.l[(i, k)];
                let yk = &done[k * m..(k + 1) * m];
                for (a, &y) in yi.iter_mut().zip(yk) {
                    *a -= lik * y;
                }
            }
            let lii = self.l[(i, i)];
            for a in yi.iter_mut() {
                *a /= lii;
            }
        }
        // Back substitution L^T X = Y.
        for i in (0..n).rev() {
            let (head, tail) = t.split_at_mut((i + 1) * m);
            let xi = &mut head[i * m..];
            for k in (i + 1)..n {
                let lki = self.l[(k, i)];
                let xk = &tail[(k - i - 1) * m..(k - i) * m];
                for (a, &x) in xi.iter_mut().zip(xk) {
                    *a -= lki * x;
                }
            }
            let lii = self.l[(i, i)];
            for a in xi.iter_mut() {
                *a /= lii;
            }
        }
        for (j, b) in rhs.chunks_exact_mut(n).enumerate() {
            for (k, v) in b.iter_mut().enumerate() {
                *v = t[k * m + j];
            }
        }
        Ok(())
    }

    /// Log-determinant of `A`, i.e. `2 * sum(log(diag(L)))`.
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows())
            .map(|i| self.l[(i, i)].ln())
            .sum::<f64>()
            * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_and_reconstructs() {
        let a = Mat::from_rows(&[&[25.0, 15.0, -5.0], &[15.0, 18.0, 0.0], &[-5.0, 0.0, 11.0]]);
        let ch = Cholesky::factor(&a).unwrap();
        let l = ch.l();
        let rebuilt = l.matmul(&l.transpose()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((rebuilt[(i, j)] - a[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn solve_matches_direct() {
        let a = Mat::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let ch = Cholesky::factor(&a).unwrap();
        let x = ch.solve(&[1.0, 2.0]).unwrap();
        let ax = a.matvec(&x).unwrap();
        assert!((ax[0] - 1.0).abs() < 1e-12);
        assert!((ax[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_indefinite() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LaError::NotPositiveDefinite)
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = Mat::zeros(2, 3);
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LaError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn jitter_is_zero_for_well_conditioned_input() {
        let a = Mat::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let (_, jitter) = Cholesky::factor_with_jitter(&a, 1e-10, 8).unwrap();
        assert_eq!(jitter, 0.0);
    }

    #[test]
    fn jitter_escalates_until_factorable() {
        // Rank-1 Gram matrix (duplicate design points): singular, so
        // plain factorization fails but any positive jitter repairs it.
        let a = Mat::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        assert!(Cholesky::factor(&a).is_err());
        let (ch, jitter) = Cholesky::factor_with_jitter(&a, 1e-10, 12).unwrap();
        assert!(jitter >= 1e-10);
        let x = ch.solve(&[1.0, 1.0]).unwrap();
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn jitter_gives_up_after_max_attempts() {
        // −I needs jitter > 1 to become positive definite; with a tiny
        // start and few attempts the escalation cannot reach it.
        let a = Mat::from_rows(&[&[-1.0, 0.0], &[0.0, -1.0]]);
        assert!(matches!(
            Cholesky::factor_with_jitter(&a, 1e-12, 3),
            Err(LaError::NotPositiveDefinite)
        ));
        // With enough attempts the ×10 ladder crosses the threshold.
        assert!(Cholesky::factor_with_jitter(&a, 1e-12, 16).is_ok());
    }

    #[test]
    fn in_place_and_batched_solves_match_allocating_solve() {
        let a = Mat::from_rows(&[&[25.0, 15.0, -5.0], &[15.0, 18.0, 0.0], &[-5.0, 0.0, 11.0]]);
        let ch = Cholesky::factor(&a).unwrap();
        let rhs: Vec<Vec<f64>> = vec![
            vec![1.0, 2.0, 3.0],
            vec![-4.0, 0.5, 9.0],
            vec![0.0, 0.0, 1.0],
        ];
        let mut flat: Vec<f64> = rhs.iter().flatten().copied().collect();
        ch.solve_many(&mut flat).unwrap();
        for (b, got) in rhs.iter().zip(flat.chunks_exact(3)) {
            let want = ch.solve(b).unwrap();
            // Bitwise identical: same operations in the same order.
            assert_eq!(got, want.as_slice());
            let mut one = b.clone();
            ch.solve_in_place(&mut one).unwrap();
            assert_eq!(one, want);
        }
    }

    #[test]
    fn batched_solve_rejects_ragged_buffers() {
        let a = Mat::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let ch = Cholesky::factor(&a).unwrap();
        let mut rhs = vec![1.0, 2.0, 3.0];
        assert!(matches!(
            ch.solve_many(&mut rhs),
            Err(LaError::DimensionMismatch { .. })
        ));
        let mut one = vec![1.0];
        assert!(ch.solve_in_place(&mut one).is_err());
        let mut empty: Vec<f64> = Vec::new();
        assert!(ch.solve_many(&mut empty).is_ok());
    }

    #[test]
    fn log_det_matches() {
        let a = Mat::from_rows(&[&[2.0, 0.0], &[0.0, 8.0]]);
        let ch = Cholesky::factor(&a).unwrap();
        assert!((ch.log_det() - (16.0f64).ln()).abs() < 1e-12);
    }
}
