//! Cholesky factorization for symmetric positive-definite matrices.

use crate::{LaError, Mat, Result};

/// Lower-triangular Cholesky factor `L` with `A = L L^T`.
///
/// Used by the Gaussian-process surrogate in the DSE crate, where the
/// kernel matrix is symmetric positive definite (after jitter).
///
/// # Examples
///
/// ```
/// use clapped_la::{Cholesky, Mat};
///
/// let a = Mat::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
/// let ch = Cholesky::factor(&a).unwrap();
/// let x = ch.solve(&[8.0, 7.0]).unwrap();
/// assert!((x[0] - 1.25).abs() < 1e-12);
/// assert!((x[1] - 1.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Mat,
}

impl Cholesky {
    /// Factors the symmetric positive-definite matrix `a`.
    ///
    /// Only the lower triangle of `a` is read.
    ///
    /// # Errors
    ///
    /// Returns [`LaError::DimensionMismatch`] if `a` is not square and
    /// [`LaError::NotPositiveDefinite`] if a non-positive pivot occurs.
    pub fn factor(a: &Mat) -> Result<Cholesky> {
        let n = a.rows();
        if a.cols() != n {
            return Err(LaError::DimensionMismatch {
                expected: "square matrix".to_string(),
                found: format!("{}x{}", a.rows(), a.cols()),
            });
        }
        let mut l = Mat::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LaError::NotPositiveDefinite);
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Factors `a + jitter·I`, escalating the jitter by ×10 on each
    /// failed attempt until the factorization succeeds or `max_attempts`
    /// is exhausted. Returns the factorization together with the jitter
    /// that made it succeed (`0.0` when `a` factors as-is: the first
    /// attempt adds nothing).
    ///
    /// This is the standard remedy for numerically semi-definite kernel
    /// matrices — e.g. a GP kernel over duplicated or near-duplicate
    /// design points — where a fixed nugget is either too small to help
    /// or large enough to distort well-conditioned problems.
    ///
    /// # Errors
    ///
    /// Returns [`LaError::DimensionMismatch`] if `a` is not square and
    /// [`LaError::NotPositiveDefinite`] if every attempted jitter fails.
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts` is zero or `initial_jitter` is not a
    /// positive finite number.
    pub fn factor_with_jitter(
        a: &Mat,
        initial_jitter: f64,
        max_attempts: usize,
    ) -> Result<(Cholesky, f64)> {
        assert!(max_attempts >= 1, "need at least one attempt");
        assert!(
            initial_jitter.is_finite() && initial_jitter > 0.0,
            "initial jitter must be positive and finite"
        );
        match Cholesky::factor(a) {
            Ok(ch) => return Ok((ch, 0.0)),
            Err(e @ LaError::DimensionMismatch { .. }) => return Err(e),
            Err(_) => {}
        }
        let n = a.rows();
        let mut jitter = initial_jitter;
        for _ in 0..max_attempts {
            let mut damped = a.clone();
            for i in 0..n {
                damped[(i, i)] += jitter;
            }
            if let Ok(ch) = Cholesky::factor(&damped) {
                return Ok((ch, jitter));
            }
            jitter *= 10.0;
        }
        Err(LaError::NotPositiveDefinite)
    }

    /// Borrows the lower-triangular factor `L`.
    pub fn l(&self) -> &Mat {
        &self.l
    }

    /// Solves `A x = b` using the factorization.
    ///
    /// # Errors
    ///
    /// Returns [`LaError::DimensionMismatch`] if `b.len()` differs from the
    /// matrix dimension.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LaError::DimensionMismatch {
                expected: format!("vector of length {n}"),
                found: format!("vector of length {}", b.len()),
            });
        }
        // Forward substitution L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut acc = b[i];
            for k in 0..i {
                acc -= self.l[(i, k)] * y[k];
            }
            y[i] = acc / self.l[(i, i)];
        }
        // Back substitution L^T x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for k in (i + 1)..n {
                acc -= self.l[(k, i)] * x[k];
            }
            x[i] = acc / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Log-determinant of `A`, i.e. `2 * sum(log(diag(L)))`.
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows())
            .map(|i| self.l[(i, i)].ln())
            .sum::<f64>()
            * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_and_reconstructs() {
        let a = Mat::from_rows(&[&[25.0, 15.0, -5.0], &[15.0, 18.0, 0.0], &[-5.0, 0.0, 11.0]]);
        let ch = Cholesky::factor(&a).unwrap();
        let l = ch.l();
        let rebuilt = l.matmul(&l.transpose()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((rebuilt[(i, j)] - a[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn solve_matches_direct() {
        let a = Mat::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let ch = Cholesky::factor(&a).unwrap();
        let x = ch.solve(&[1.0, 2.0]).unwrap();
        let ax = a.matvec(&x).unwrap();
        assert!((ax[0] - 1.0).abs() < 1e-12);
        assert!((ax[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_indefinite() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LaError::NotPositiveDefinite)
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = Mat::zeros(2, 3);
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LaError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn jitter_is_zero_for_well_conditioned_input() {
        let a = Mat::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let (_, jitter) = Cholesky::factor_with_jitter(&a, 1e-10, 8).unwrap();
        assert_eq!(jitter, 0.0);
    }

    #[test]
    fn jitter_escalates_until_factorable() {
        // Rank-1 Gram matrix (duplicate design points): singular, so
        // plain factorization fails but any positive jitter repairs it.
        let a = Mat::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        assert!(Cholesky::factor(&a).is_err());
        let (ch, jitter) = Cholesky::factor_with_jitter(&a, 1e-10, 12).unwrap();
        assert!(jitter >= 1e-10);
        let x = ch.solve(&[1.0, 1.0]).unwrap();
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn jitter_gives_up_after_max_attempts() {
        // −I needs jitter > 1 to become positive definite; with a tiny
        // start and few attempts the escalation cannot reach it.
        let a = Mat::from_rows(&[&[-1.0, 0.0], &[0.0, -1.0]]);
        assert!(matches!(
            Cholesky::factor_with_jitter(&a, 1e-12, 3),
            Err(LaError::NotPositiveDefinite)
        ));
        // With enough attempts the ×10 ladder crosses the threshold.
        assert!(Cholesky::factor_with_jitter(&a, 1e-12, 16).is_ok());
    }

    #[test]
    fn log_det_matches() {
        let a = Mat::from_rows(&[&[2.0, 0.0], &[0.0, 8.0]]);
        let ch = Cholesky::factor(&a).unwrap();
        assert!((ch.log_det() - (16.0f64).ln()).abs() < 1e-12);
    }
}
