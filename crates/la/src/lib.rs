// Index-based loops over multiple coupled arrays are the clearest idiom
// for the numeric kernels in this crate.
#![allow(clippy::needless_range_loop)]

//! Dense linear algebra primitives for the CLAppED workspace.
//!
//! This crate provides the small set of numerical building blocks that the
//! rest of the framework needs — dense matrices, Householder QR least
//! squares, Cholesky factorization, and feature standardization — without
//! pulling in an external linear-algebra dependency.
//!
//! # Examples
//!
//! ```
//! use clapped_la::Mat;
//!
//! // Solve the least-squares problem min ||Ax - b||.
//! let a = Mat::from_rows(&[&[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]);
//! let b = [6.0, 9.0, 12.0];
//! let x = a.lstsq(&b).unwrap();
//! assert!((x[0] - 3.0).abs() < 1e-9);
//! assert!((x[1] - 3.0).abs() < 1e-9);
//! ```

mod cholesky;
mod mat;
mod qr;
mod stats;

pub use cholesky::Cholesky;
pub use mat::Mat;
pub use qr::Qr;
pub use stats::{mean, population_std, standardize_in_place, variance, Standardizer};

use std::error::Error;
use std::fmt;

/// Error type for linear-algebra operations in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LaError {
    /// Matrix dimensions are incompatible with the requested operation.
    DimensionMismatch {
        /// Human-readable description of the expected shape.
        expected: String,
        /// Human-readable description of the shape that was provided.
        found: String,
    },
    /// The matrix is singular (or numerically so) and cannot be factored
    /// or solved against.
    Singular,
    /// The matrix is not positive definite (Cholesky only).
    NotPositiveDefinite,
}

impl fmt::Display for LaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            LaError::Singular => write!(f, "matrix is singular to working precision"),
            LaError::NotPositiveDefinite => write!(f, "matrix is not positive definite"),
        }
    }
}

impl Error for LaError {}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, LaError>;
