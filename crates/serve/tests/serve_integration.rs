//! End-to-end daemon tests: crash recovery, fairness, cross-process
//! cache warmth, and protocol robustness over real sockets.

use clapped_core::{Clapped, Session, SessionSpec};
use clapped_dse::MboConfig;
use clapped_obs::Deadline;
use clapped_serve::{
    Client, ErrorCode, JobSpec, JobState, Listen, Server, ServerConfig, ServeError,
};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("clapped_serve_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn small_mbo(seed: u64, iterations: usize) -> MboConfig {
    MboConfig {
        initial_samples: 6,
        iterations,
        batch: 3,
        candidates: 10,
        reference: vec![40.0, 5000.0],
        kappa: 1.0,
        explore_fraction: 0.1,
        seed,
    }
}

fn job_spec(seed: u64, iterations: usize) -> JobSpec {
    JobSpec {
        image_size: 16,
        noise_sigma: 12.0,
        seed: 1,
        mbo: small_mbo(seed, iterations),
        max_error_percent: Some(20.0),
        ..JobSpec::default()
    }
}

/// The front the daemon must reproduce: the same spec explored
/// in-process on a fresh framework (no disk cache, default engine).
fn reference_front(spec: &JobSpec) -> Vec<(clapped_dse::Configuration, u64, u64)> {
    let fw = Arc::new(
        Clapped::builder()
            .application(spec.app)
            .image_size(spec.image_size)
            .noise_sigma(spec.noise_sigma)
            .seed(spec.seed)
            .build()
            .expect("build reference framework"),
    );
    let session_spec = SessionSpec {
        mbo: spec.mbo.clone(),
        max_error_percent: spec.max_error_percent,
        max_evaluations: spec.max_evaluations,
        ..SessionSpec::default()
    };
    let mut session = Session::new(fw, &session_spec).expect("open reference session");
    while !session.step().expect("step reference session") {}
    session
        .pareto()
        .into_iter()
        .map(|p| (p.config, p.searched[0].to_bits(), p.searched[1].to_bits()))
        .collect()
}

// ---------------------------------------------------------------------------
// kill -9 and bit-exact resume
// ---------------------------------------------------------------------------

struct Daemon {
    child: Child,
}

impl Daemon {
    fn spawn(socket: &PathBuf, state: &PathBuf, cache: &PathBuf) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_clapped_serve"))
            .args([
                "--uds",
                &socket.display().to_string(),
                "--state-dir",
                &state.display().to_string(),
                "--cache-dir",
                &cache.display().to_string(),
                "--workers",
                "2",
            ])
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn clapped_serve");
        // The readiness line is printed after the socket is bound.
        let stdout = child.stdout.take().expect("child stdout");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).expect("read readiness line");
        assert!(line.starts_with("listening on uds"), "unexpected readiness line: {line}");
        Daemon { child }
    }

    fn kill_hard(&mut self) {
        // On unix `Child::kill` delivers SIGKILL: no destructors, no
        // flushes — the crash the checkpoint discipline must survive.
        self.child.kill().expect("kill daemon");
        let _ = self.child.wait();
    }
}

#[test]
fn kill_dash_nine_resumes_every_job_bit_exactly() {
    let root = temp_dir("kill");
    let socket = root.join("serve.sock");
    let state = root.join("state");
    let cache = root.join("cache");

    let specs: Vec<JobSpec> = (0..3).map(|i| job_spec(100 + i, 6)).collect();

    let mut daemon = Daemon::spawn(&socket, &state, &cache);
    let listen = Listen::Uds(socket.clone());
    let mut client = Client::connect(&listen).expect("connect");
    client.ping().expect("ping");
    let jobs: Vec<String> = specs
        .iter()
        .map(|spec| client.submit("crash-tenant", spec.clone()).expect("submit"))
        .collect();

    // Let the campaign get partway — at least one phase persisted, not
    // all jobs finished — then pull the plug.
    let limit = Deadline::after(Duration::from_secs(120));
    loop {
        assert!(!limit.expired(), "no progress before deadline");
        let statuses = client.jobs().expect("jobs");
        let progressed = statuses.iter().any(|s| s.evaluations_done > 0);
        if progressed {
            break;
        }
        thread::sleep(Duration::from_millis(20));
    }
    daemon.kill_hard();

    // Restart on the same state + cache directories: every non-terminal
    // job must resume from its checkpoint and finish.
    let mut daemon = Daemon::spawn(&socket, &state, &cache);
    let mut client = Client::connect(&listen).expect("reconnect");
    for job in &jobs {
        let status = client
            .wait(job, Duration::from_millis(50), Deadline::after(Duration::from_secs(300)))
            .expect("wait for resumed job");
        assert_eq!(status.state, JobState::Done, "job {job}: {:?}", status.error);
    }

    for (job, spec) in jobs.iter().zip(&specs) {
        let (_, pareto) = client.result(job).expect("fetch result");
        let expected = reference_front(spec);
        assert_eq!(pareto.len(), expected.len(), "front size for {job}");
        for (entry, (config, err_bits, lut_bits)) in pareto.iter().zip(&expected) {
            assert_eq!(&entry.config, config, "config diverged for {job}");
            assert_eq!(entry.error_percent.to_bits(), *err_bits, "error bits for {job}");
            assert_eq!(entry.luts.to_bits(), *lut_bits, "lut bits for {job}");
        }
    }

    client.shutdown().expect("shutdown");
    let _ = daemon.child.wait();
    let _ = std::fs::remove_dir_all(&root);
}

// ---------------------------------------------------------------------------
// two-tenant fairness
// ---------------------------------------------------------------------------

#[test]
fn singleton_tenant_is_not_starved_by_a_burst() {
    let root = temp_dir("fair");
    let mut config =
        ServerConfig::new(Listen::Tcp("127.0.0.1:0".to_string()), root.join("state"));
    config.workers = 1; // serialize phases so scheduling order is observable
    let server = Server::start(config).expect("start server");
    let listen = server.listen_addr().clone();

    let mut client = Client::connect(&listen).expect("connect");
    let alpha: Vec<String> = (0..3)
        .map(|i| client.submit("alpha", job_spec(200 + i, 3)).expect("submit alpha"))
        .collect();
    let beta = client.submit("beta", job_spec(300, 3)).expect("submit beta");

    let deadline = Deadline::after(Duration::from_secs(300));
    let beta_status =
        client.wait(&beta, Duration::from_millis(30), deadline).expect("wait beta");
    assert_eq!(beta_status.state, JobState::Done);
    let alpha_finish: Vec<u64> = alpha
        .iter()
        .map(|job| {
            let s = client.wait(job, Duration::from_millis(30), deadline).expect("wait alpha");
            assert_eq!(s.state, JobState::Done);
            s.finish_seq.expect("alpha finish_seq")
        })
        .collect();

    let beta_finish = beta_status.finish_seq.expect("beta finish_seq");
    let last_alpha = alpha_finish.iter().copied().max().expect("alpha max");
    assert!(
        beta_finish < last_alpha,
        "round-robin must finish the singleton (finish {beta_finish}) before the \
         burst drains (last alpha finish {last_alpha})"
    );

    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&root);
}

// ---------------------------------------------------------------------------
// cross-process warm cache
// ---------------------------------------------------------------------------

#[test]
fn second_server_on_shared_cache_recomputes_nothing() {
    let root = temp_dir("warm");
    let cache = root.join("cache");
    let spec = job_spec(400, 2);

    let mut config_a =
        ServerConfig::new(Listen::Tcp("127.0.0.1:0".to_string()), root.join("state_a"));
    config_a.cache_dir = Some(cache.clone());
    let server_a = Server::start(config_a).expect("start server A");
    let mut config_b =
        ServerConfig::new(Listen::Tcp("127.0.0.1:0".to_string()), root.join("state_b"));
    config_b.cache_dir = Some(cache.clone());
    let server_b = Server::start(config_b).expect("start server B");

    let deadline = Deadline::after(Duration::from_secs(300));
    let mut client_a = Client::connect(server_a.listen_addr()).expect("connect A");
    let job_a = client_a.submit("cold", spec.clone()).expect("submit A");
    let status_a = client_a.wait(&job_a, Duration::from_millis(30), deadline).expect("wait A");
    assert_eq!(status_a.state, JobState::Done, "{:?}", status_a.error);
    let stats_a = server_a.stats();
    assert!(stats_a.cache.misses > 0, "cold run must compute: {:?}", stats_a.cache);

    // Server B shares only the cache directory. Every evaluation its
    // (identical) trajectory needs was already published by A, so B
    // must answer everything from the cache: zero fresh computes.
    let mut client_b = Client::connect(server_b.listen_addr()).expect("connect B");
    let job_b = client_b.submit("warm", spec).expect("submit B");
    let status_b = client_b.wait(&job_b, Duration::from_millis(30), deadline).expect("wait B");
    assert_eq!(status_b.state, JobState::Done, "{:?}", status_b.error);
    let stats_b = server_b.stats();
    assert_eq!(stats_b.cache.misses, 0, "warm run recomputed: {:?}", stats_b.cache);
    assert!(stats_b.cache.disk_hits > 0, "warm run must read the shared tier");

    let (_, front_a) = client_a.result(&job_a).expect("result A");
    let (_, front_b) = client_b.result(&job_b).expect("result B");
    assert_eq!(front_a.len(), front_b.len());
    for (a, b) in front_a.iter().zip(&front_b) {
        assert_eq!(a.config, b.config);
        assert_eq!(a.error_percent.to_bits(), b.error_percent.to_bits());
        assert_eq!(a.luts.to_bits(), b.luts.to_bits());
    }

    server_a.shutdown();
    server_b.shutdown();
    server_a.join();
    server_b.join();
    let _ = std::fs::remove_dir_all(&root);
}

// ---------------------------------------------------------------------------
// protocol robustness over a real socket
// ---------------------------------------------------------------------------

#[test]
fn malformed_oversized_and_half_closed_requests_get_structured_replies() {
    let root = temp_dir("proto");
    let mut config =
        ServerConfig::new(Listen::Tcp("127.0.0.1:0".to_string()), root.join("state"));
    config.max_request_bytes = 4096;
    config.read_timeout_ms = 300;
    let server = Server::start(config).expect("start server");
    let Listen::Tcp(addr) = server.listen_addr().clone() else {
        panic!("expected tcp listen address");
    };

    // Malformed JSON gets a structured reply and the connection stays
    // usable for the next (valid) request.
    let mut client = Client::connect(server.listen_addr()).expect("connect");
    match client.roundtrip_raw("{definitely not json") {
        Ok(clapped_serve::Reply::Error { code, .. }) => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected malformed error, got {other:?}"),
    }
    client.ping().expect("connection survives a malformed line");

    // Unknown operations and unknown jobs are distinct errors.
    match client.roundtrip_raw("{\"op\":\"frobnicate\"}") {
        Ok(clapped_serve::Reply::Error { code, .. }) => assert_eq!(code, ErrorCode::UnknownOp),
        other => panic!("expected unknown-op error, got {other:?}"),
    }
    match client.status("j999") {
        Err(ServeError::Remote { code, .. }) => assert_eq!(code, ErrorCode::UnknownJob),
        other => panic!("expected unknown-job error, got {other:?}"),
    }

    // A line past the byte bound draws `oversized`, then the server
    // hangs up.
    let mut client = Client::connect(server.listen_addr()).expect("connect");
    let huge = "x".repeat(8192);
    match client.roundtrip_raw(&huge) {
        Ok(clapped_serve::Reply::Error { code, .. }) => assert_eq!(code, ErrorCode::Oversized),
        other => panic!("expected oversized error, got {other:?}"),
    }

    // Half-closing mid-request (bytes but no newline, then EOF) is
    // answered before the server closes its side.
    let mut raw = TcpStream::connect(&addr).expect("raw connect");
    raw.write_all(b"{\"op\":\"ping\"").expect("write partial");
    raw.shutdown(std::net::Shutdown::Write).expect("half-close");
    let mut reply = String::new();
    raw.read_to_string(&mut reply).expect("read reply");
    assert!(
        reply.contains("\"error\":\"malformed\""),
        "half-close must draw a structured reply, got: {reply}"
    );

    // An idle connection trips the read timeout and is told why.
    let mut raw = TcpStream::connect(&addr).expect("raw connect");
    let mut reply = String::new();
    raw.read_to_string(&mut reply).expect("read timeout reply");
    assert!(
        reply.contains("\"error\":\"timeout\""),
        "idle connection must draw a timeout reply, got: {reply}"
    );

    // A bad spec is rejected at submit time with `bad-spec`.
    let mut client = Client::connect(server.listen_addr()).expect("connect");
    let mut bad = job_spec(1, 1);
    bad.image_size = 0;
    match client.submit("t", bad) {
        Err(ServeError::Remote { code, .. }) => assert_eq!(code, ErrorCode::BadSpec),
        other => panic!("expected bad-spec error, got {other:?}"),
    }

    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&root);
}

// ---------------------------------------------------------------------------
// graceful drain
// ---------------------------------------------------------------------------

#[test]
fn shutdown_rejects_new_work_and_preserves_queued_jobs() {
    let root = temp_dir("drain");
    let state = root.join("state");
    let mut config = ServerConfig::new(Listen::Tcp("127.0.0.1:0".to_string()), state.clone());
    config.workers = 1;
    let server = Server::start(config).expect("start server");
    let mut client = Client::connect(server.listen_addr()).expect("connect");

    // Queue more work than one worker can finish instantly, then drain.
    let jobs: Vec<String> = (0..4)
        .map(|i| client.submit("t", job_spec(500 + i, 4)).expect("submit"))
        .collect();
    client.shutdown().expect("shutdown");
    match client.submit("t", job_spec(999, 1)) {
        Err(ServeError::Remote { code, .. }) => assert_eq!(code, ErrorCode::ShuttingDown),
        other => panic!("expected shutting-down error, got {other:?}"),
    }
    server.join();

    // A fresh server on the same state directory sees every job and
    // finishes the ones the drain interrupted.
    let mut config = ServerConfig::new(Listen::Tcp("127.0.0.1:0".to_string()), state);
    config.workers = 2;
    let server = Server::start(config).expect("restart server");
    let mut client = Client::connect(server.listen_addr()).expect("reconnect");
    assert_eq!(client.jobs().expect("jobs").len(), jobs.len());
    for job in &jobs {
        let status = client
            .wait(job, Duration::from_millis(30), Deadline::after(Duration::from_secs(300)))
            .expect("wait");
        assert_eq!(status.state, JobState::Done, "job {job}: {:?}", status.error);
    }
    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&root);
}
