//! Property tests: every protocol message type round-trips through its
//! wire line — `decode(encode(m)) == m` — including awkward floats,
//! optional fields in both states, and every enum variant.
//!
//! The vendored proptest has no string or enum strategies, so messages
//! are assembled from drawn primitives: strings come from `u64`s
//! (`format!("t{n}")`), enums from small integer selectors.

use clapped_dse::{Configuration, MboConfig};
use clapped_imgproc::ConvMode;
use clapped_serve::{
    ErrorCode, JobSpec, JobState, JobStatus, ParetoEntry, Reply, Request, ServerStats,
};
use proptest::prelude::*;

fn app_of(selector: bool) -> clapped_core::AppKind {
    if selector {
        clapped_core::AppKind::GaussianDenoise
    } else {
        clapped_core::AppKind::SobelEdge
    }
}

fn mbo_of(seed: u64, batch: usize, reference: Vec<f64>) -> MboConfig {
    MboConfig {
        initial_samples: (seed % 19 + 1) as usize,
        iterations: (seed % 7) as usize,
        batch,
        candidates: (seed % 31 + 1) as usize,
        reference,
        kappa: (seed % 11) as f64 / 3.0,
        explore_fraction: (seed % 10) as f64 / 10.0,
        seed,
    }
}

fn spec_of(
    selector: u64,
    seed: u64,
    sigma: f64,
    batch: usize,
    reference: Vec<f64>,
    limit: f64,
) -> JobSpec {
    JobSpec {
        app: app_of(selector % 2 == 0),
        image_size: (seed % 60 + 4) as usize,
        noise_sigma: sigma,
        seed,
        mbo: mbo_of(seed, batch, reference),
        max_error_percent: (selector % 3 == 0).then_some(limit),
        max_evaluations: (selector % 5 == 0).then_some((seed % 200) as usize + 1),
        deadline_ms: (selector % 7 == 0).then_some(seed % 100_000),
    }
}

fn status_of(selector: u64, job: u64, hv: f64) -> JobStatus {
    let state = match selector % 4 {
        0 => JobState::Queued,
        1 => JobState::Running,
        2 => JobState::Done,
        _ => JobState::Failed,
    };
    JobStatus {
        job: format!("j{job}"),
        tenant: format!("t{}", job % 13),
        state,
        evaluations_done: selector % 500,
        evaluations_planned: selector % 500 + job % 50,
        iterations_done: selector % 40,
        hypervolume: hv,
        finish_seq: state.is_terminal().then_some(job % 97),
        error: (state == JobState::Failed).then(|| format!("fail{selector}")),
    }
}

fn entry_of(window_sel: u64, scale: usize, luts: f64, err: f64, muls: Vec<usize>) -> ParetoEntry {
    let window = (window_sel % 3) as usize * 2 + 3; // 3, 5 or 7
    let mut config = Configuration::golden(window);
    config.stride = (window_sel % 2 + 1) as usize;
    config.downsample = window_sel % 3 == 0;
    config.mode = if window_sel % 2 == 0 { ConvMode::TwoD } else { ConvMode::Separable };
    config.scale = scale;
    config.mul_indices = (0..window * window).map(|i| muls[i % muls.len()]).collect();
    ParetoEntry { config, error_percent: err, luts, feasible: window_sel % 2 == 1 }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn every_request_variant_round_trips(
        variant in 0usize..7,
        selector: u64,
        seed: u64,
        sigma in 0.0f64..60.0,
        batch in 1usize..9,
        reference in proptest::collection::vec(0.1f64..10_000.0, 2),
        limit in 0.0f64..50.0,
    ) {
        let request = match variant {
            0 => Request::Ping,
            1 => Request::Submit {
                tenant: format!("t{}", selector % 23),
                spec: spec_of(selector, seed, sigma, batch, reference, limit),
            },
            2 => Request::Status { job: format!("j{}", seed % 1000) },
            3 => Request::Result { job: format!("j{}", seed % 1000) },
            4 => Request::Jobs,
            5 => Request::Stats,
            _ => Request::Shutdown,
        };
        let line = request.encode();
        prop_assert!(!line.contains('\n'));
        prop_assert_eq!(Request::decode(&line).map_err(|e| e.to_string()), Ok(request));
    }

    #[test]
    fn every_reply_variant_round_trips(
        variant in 0usize..8,
        selector: u64,
        job: u64,
        hv in 0.0f64..1.0e9,
        luts in 0.0f64..50_000.0,
        err in 0.0f64..100.0,
        scale in 1usize..5,
        muls in proptest::collection::vec(0usize..12, 1..6),
        counters in proptest::collection::vec(0u64..1_000_000, 14),
    ) {
        let reply = match variant {
            0 => Reply::Pong,
            1 => Reply::Submitted { job: format!("j{job}") },
            2 => Reply::Status(status_of(selector, job, hv)),
            3 => Reply::JobResult {
                status: status_of(selector, job, hv),
                pareto: (0..(selector % 4))
                    .map(|i| entry_of(selector + i, scale, luts, err, muls.clone()))
                    .collect(),
            },
            4 => Reply::Jobs(
                (0..(selector % 5)).map(|i| status_of(selector + i, job + i, hv)).collect(),
            ),
            5 => Reply::Stats(ServerStats {
                jobs_submitted: counters[0],
                jobs_done: counters[1],
                jobs_failed: counters[2],
                steps: counters[3],
                requests: counters[4],
                protocol_errors: counters[5],
                cache: clapped_exec::CacheStats {
                    hits: counters[6],
                    disk_hits: counters[7],
                    misses: counters[8],
                    insertions: counters[9],
                    evictions: counters[10],
                    disk_corrupt: counters[11],
                    lock_contention: counters[12],
                    entries: counters[13] as usize,
                },
            }),
            6 => Reply::Bye,
            _ => {
                let codes = [
                    ErrorCode::Malformed,
                    ErrorCode::Oversized,
                    ErrorCode::Timeout,
                    ErrorCode::UnknownOp,
                    ErrorCode::UnknownJob,
                    ErrorCode::BadSpec,
                    ErrorCode::ShuttingDown,
                ];
                Reply::Error {
                    code: codes[(selector % codes.len() as u64) as usize],
                    detail: format!("d{selector}"),
                }
            }
        };
        let line = reply.encode();
        prop_assert!(!line.contains('\n'));
        prop_assert_eq!(Reply::decode(&line).map_err(|e| e.to_string()), Ok(reply));
    }

    /// The MBO seed, kappa and reference floats survive the submit path
    /// bit-exactly — the property bit-identical resume rests on.
    #[test]
    fn submit_spec_floats_are_bit_exact(
        seed: u64,
        sigma in 0.0f64..60.0,
        reference in proptest::collection::vec(1.0e-6f64..1.0e7, 2),
    ) {
        let spec = spec_of(1, seed, sigma, 3, reference, 5.0);
        let line = Request::Submit { tenant: "t".to_string(), spec: spec.clone() }.encode();
        let Ok(Request::Submit { spec: decoded, .. }) = Request::decode(&line) else {
            return Err("decode failed".to_string());
        };
        prop_assert_eq!(decoded.noise_sigma.to_bits(), spec.noise_sigma.to_bits());
        prop_assert_eq!(decoded.mbo.kappa.to_bits(), spec.mbo.kappa.to_bits());
        for (a, b) in decoded.mbo.reference.iter().zip(&spec.mbo.reference) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
