//! Crash-safe persistence for job records and session checkpoints.
//!
//! The store keeps two directories under its root:
//!
//! ```text
//! state/
//!   jobs/         one JSON record per job: {id}.json
//!   checkpoints/  one MboState checkpoint per in-flight job: {id}.ckpt
//! ```
//!
//! Every write is tmp-file + atomic rename (the same discipline as the
//! exec-layer disk cache), so a `kill -9` at any instant leaves either
//! the old file or the new one — never a torn hybrid. Job ids are
//! server-assigned (`j<seq>`) and validated on load, so a stray file in
//! the directory is skipped rather than trusted.

use crate::{Result, ServeError};
use serde_json::Value;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Directory-backed storage for job records and checkpoints.
#[derive(Debug)]
pub struct JobStore {
    jobs: PathBuf,
    checkpoints: PathBuf,
}

fn atomic_write(dir: &Path, name: &str, bytes: &[u8]) -> Result<()> {
    let tmp = dir.join(format!(".{}.{}.tmp", name, std::process::id()));
    let fin = dir.join(name);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    match fs::rename(&tmp, &fin) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            Err(ServeError::Io(e))
        }
    }
}

/// Whether `name` looks like a server-assigned job id (`j<digits>`).
fn valid_job_id(name: &str) -> bool {
    name.len() > 1
        && name.starts_with('j')
        && name[1..].bytes().all(|b| b.is_ascii_digit())
}

impl JobStore {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(root: &Path) -> Result<JobStore> {
        let jobs = root.join("jobs");
        let checkpoints = root.join("checkpoints");
        fs::create_dir_all(&jobs)?;
        fs::create_dir_all(&checkpoints)?;
        Ok(JobStore { jobs, checkpoints })
    }

    /// Persists one job record atomically.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save_job(&self, id: &str, record: &Value) -> Result<()> {
        atomic_write(&self.jobs, &format!("{id}.json"), record.to_string().as_bytes())
    }

    /// Loads every valid job record, sorted by numeric job sequence.
    /// Unparseable or foreign files are skipped, not fatal: recovery
    /// must tolerate a partially written tmp file or operator debris.
    ///
    /// # Errors
    ///
    /// Propagates directory-read failures.
    pub fn load_jobs(&self) -> Result<Vec<Value>> {
        let mut found: Vec<(u64, Value)> = Vec::new();
        for entry in fs::read_dir(&self.jobs)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(stem) = name.strip_suffix(".json") else { continue };
            if !valid_job_id(stem) {
                continue;
            }
            let Ok(seq) = stem[1..].parse::<u64>() else { continue };
            let Ok(text) = fs::read_to_string(entry.path()) else { continue };
            let Ok(record) = serde_json::from_str(&text) else { continue };
            found.push((seq, record));
        }
        found.sort_by_key(|(seq, _)| *seq);
        Ok(found.into_iter().map(|(_, record)| record).collect())
    }

    /// Persists one session checkpoint atomically.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save_checkpoint(&self, id: &str, checkpoint: &str) -> Result<()> {
        atomic_write(&self.checkpoints, &format!("{id}.ckpt"), checkpoint.as_bytes())
    }

    /// Loads a session checkpoint, if one was ever persisted.
    pub fn load_checkpoint(&self, id: &str) -> Option<String> {
        fs::read_to_string(self.checkpoints.join(format!("{id}.ckpt"))).ok()
    }

    /// Removes a job's checkpoint (terminal states no longer need it).
    pub fn remove_checkpoint(&self, id: &str) {
        let _ = fs::remove_file(self.checkpoints.join(format!("{id}.ckpt")));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("clapped_jobstore_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn records_round_trip_sorted_by_sequence() {
        let root = temp_dir("roundtrip");
        let store = JobStore::open(&root).unwrap();
        store.save_job("j10", &json!({"id": "j10"})).unwrap();
        store.save_job("j2", &json!({"id": "j2"})).unwrap();
        store.save_job("j2", &json!({"id": "j2", "v": 2})).unwrap();
        let loaded = store.load_jobs().unwrap();
        let ids: Vec<&str> = loaded.iter().filter_map(|r| r["id"].as_str()).collect();
        assert_eq!(ids, ["j2", "j10"]);
        assert_eq!(loaded[0]["v"].as_u64(), Some(2), "rewrite wins");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn debris_is_skipped_not_fatal() {
        let root = temp_dir("debris");
        let store = JobStore::open(&root).unwrap();
        store.save_job("j1", &json!({"id": "j1"})).unwrap();
        fs::write(root.join("jobs/.j9.4242.tmp"), "{torn").unwrap();
        fs::write(root.join("jobs/notes.json"), "not a job").unwrap();
        fs::write(root.join("jobs/j3.json"), "{also torn").unwrap();
        let loaded = store.load_jobs().unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0]["id"].as_str(), Some("j1"));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn checkpoints_store_and_remove() {
        let root = temp_dir("ckpt");
        let store = JobStore::open(&root).unwrap();
        assert!(store.load_checkpoint("j1").is_none());
        store.save_checkpoint("j1", "{\"phase\":3}").unwrap();
        assert_eq!(store.load_checkpoint("j1").as_deref(), Some("{\"phase\":3}"));
        store.save_checkpoint("j1", "{\"phase\":4}").unwrap();
        assert_eq!(store.load_checkpoint("j1").as_deref(), Some("{\"phase\":4}"));
        store.remove_checkpoint("j1");
        assert!(store.load_checkpoint("j1").is_none());
        let _ = fs::remove_dir_all(&root);
    }
}
