//! A small blocking client for tools, benchmarks and tests.

use crate::protocol::{JobSpec, JobStatus, ParetoEntry, Reply, Request, ServerStats};
use crate::server::Listen;
use crate::{Result, ServeError};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::thread;
use std::time::Duration;

use clapped_obs::Deadline;

enum Stream {
    Tcp(TcpStream),
    Uds(UnixStream),
}

impl Stream {
    fn try_clone_reader(&self) -> std::io::Result<Stream> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            Stream::Uds(s) => s.try_clone().map(Stream::Uds),
        }
    }
}

impl std::io::Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Uds(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Uds(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Uds(s) => s.flush(),
        }
    }
}

/// A blocking connection to a `clapped-serve` daemon.
pub struct Client {
    writer: Stream,
    reader: BufReader<Stream>,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates socket failures.
    pub fn connect(listen: &Listen) -> Result<Client> {
        let stream = match listen {
            Listen::Tcp(addr) => Stream::Tcp(TcpStream::connect(addr.as_str())?),
            Listen::Uds(path) => Stream::Uds(UnixStream::connect(path)?),
        };
        let reader = BufReader::new(stream.try_clone_reader()?);
        Ok(Client { writer: stream, reader })
    }

    /// Sends one raw line (no newline) and reads one reply line — the
    /// escape hatch protocol-robustness tests use to send garbage.
    ///
    /// # Errors
    ///
    /// I/O failures, or [`ServeError::Protocol`] if the reply line does
    /// not decode.
    pub fn roundtrip_raw(&mut self, line: &str) -> Result<Reply> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut reply_line = String::new();
        let n = self.reader.read_line(&mut reply_line)?;
        if n == 0 {
            return Err(ServeError::State("server closed the connection".to_string()));
        }
        Reply::decode(reply_line.trim_end())
    }

    /// Sends a request and decodes the reply. A structured error reply
    /// becomes [`ServeError::Remote`].
    ///
    /// # Errors
    ///
    /// I/O failures, undecodable replies, or a remote error reply.
    pub fn roundtrip(&mut self, request: &Request) -> Result<Reply> {
        match self.roundtrip_raw(&request.encode())? {
            Reply::Error { code, detail } => Err(ServeError::Remote { code, detail }),
            reply => Ok(reply),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Transport or remote errors.
    pub fn ping(&mut self) -> Result<()> {
        match self.roundtrip(&Request::Ping)? {
            Reply::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Submits a job; returns the assigned job id.
    ///
    /// # Errors
    ///
    /// Transport or remote errors (e.g. `bad-spec`, `shutting-down`).
    pub fn submit(&mut self, tenant: &str, spec: JobSpec) -> Result<String> {
        let request = Request::Submit { tenant: tenant.to_string(), spec };
        match self.roundtrip(&request)? {
            Reply::Submitted { job } => Ok(job),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches one job's progress.
    ///
    /// # Errors
    ///
    /// Transport or remote errors (e.g. `unknown-job`).
    pub fn status(&mut self, job: &str) -> Result<JobStatus> {
        match self.roundtrip(&Request::Status { job: job.to_string() })? {
            Reply::Status(status) => Ok(status),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches one job's status and Pareto front.
    ///
    /// # Errors
    ///
    /// Transport or remote errors (e.g. `unknown-job`).
    pub fn result(&mut self, job: &str) -> Result<(JobStatus, Vec<ParetoEntry>)> {
        match self.roundtrip(&Request::Result { job: job.to_string() })? {
            Reply::JobResult { status, pareto } => Ok((status, pareto)),
            other => Err(unexpected(&other)),
        }
    }

    /// Lists all jobs.
    ///
    /// # Errors
    ///
    /// Transport or remote errors.
    pub fn jobs(&mut self) -> Result<Vec<JobStatus>> {
        match self.roundtrip(&Request::Jobs)? {
            Reply::Jobs(jobs) => Ok(jobs),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches aggregate server counters.
    ///
    /// # Errors
    ///
    /// Transport or remote errors.
    pub fn stats(&mut self) -> Result<ServerStats> {
        match self.roundtrip(&Request::Stats)? {
            Reply::Stats(stats) => Ok(stats),
            other => Err(unexpected(&other)),
        }
    }

    /// Requests a graceful drain.
    ///
    /// # Errors
    ///
    /// Transport or remote errors.
    pub fn shutdown(&mut self) -> Result<()> {
        match self.roundtrip(&Request::Shutdown)? {
            Reply::Bye => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Polls `job` every `poll` until it reaches a terminal state or
    /// `limit` expires.
    ///
    /// # Errors
    ///
    /// Transport or remote errors, or [`ServeError::State`] when the
    /// limit expires first.
    pub fn wait(&mut self, job: &str, poll: Duration, limit: Deadline) -> Result<JobStatus> {
        loop {
            let status = self.status(job)?;
            if status.state.is_terminal() {
                return Ok(status);
            }
            if limit.expired() {
                return Err(ServeError::State(format!("job `{job}` still running at deadline")));
            }
            thread::sleep(poll);
        }
    }
}

fn unexpected(reply: &Reply) -> ServeError {
    ServeError::State(format!("unexpected reply variant: {reply:?}"))
}
