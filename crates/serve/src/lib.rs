//! DSE-as-a-service: the CLAppED serving layer.
//!
//! `clapped-serve` turns the framework's one-shot exploration into a
//! long-running daemon. Tenants submit DSE jobs — an application, a
//! quality constraint, an evaluation budget and an optional deadline —
//! over a std-only line-delimited JSON protocol (TCP or a Unix domain
//! socket). Jobs flow through a fair per-tenant round-robin queue onto
//! sharded worker threads, each stepping one MBO phase per scheduling
//! quantum through [`clapped_core::Session`]; every phase boundary
//! persists an [`clapped_dse::MboState`] checkpoint atomically, so a
//! `kill -9` mid-campaign loses at most the phase in flight and the
//! restarted daemon resumes every job **bit-exactly**. Frameworks are
//! pooled by [`clapped_core::ClappedConfig::digest`] — jobs with the
//! same recipe share one instance, its in-memory cache and its lazily
//! characterized operator library — and the on-disk
//! [`clapped_exec::ResultCache`] tier doubles as the cross-process
//! coordination substrate: N daemons pointed at one cache directory
//! share warm results without recomputation.
//!
//! The module map mirrors the request path:
//!
//! * [`protocol`] — wire grammar: requests, replies, error codes.
//! * [`queue`] — the fair multi-tenant scheduler.
//! * [`jobstore`] — crash-safe job records and checkpoints.
//! * [`server`] — listener, connection handling, worker shards.
//! * [`client`] — a small blocking client for tools and tests.

mod client;
mod jobstore;
mod protocol;
mod queue;
mod server;

pub use client::Client;
pub use jobstore::JobStore;
pub use protocol::{
    ErrorCode, JobSpec, JobState, JobStatus, ParetoEntry, Reply, Request, ServerStats,
};
pub use queue::FairQueue;
pub use server::{Listen, Server, ServerConfig};

use std::error::Error;
use std::fmt;

/// Error type for the serving layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// A socket or state-directory I/O failure.
    Io(std::io::Error),
    /// A message violated the wire grammar (local decode failure).
    Protocol {
        /// The structured error code.
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
    },
    /// The server answered with a structured error reply.
    Remote {
        /// The structured error code.
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
    },
    /// A framework or session operation failed.
    Core(clapped_core::ClappedError),
    /// The persisted job state is unusable (corrupt record, bad
    /// checkpoint) or a liveness bound was exceeded.
    State(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o: {e}"),
            ServeError::Protocol { code, detail } => {
                write!(f, "protocol ({}): {detail}", code.as_str())
            }
            ServeError::Remote { code, detail } => {
                write!(f, "server error ({}): {detail}", code.as_str())
            }
            ServeError::Core(e) => write!(f, "framework: {e}"),
            ServeError::State(reason) => write!(f, "state: {reason}"),
        }
    }
}

impl Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<clapped_core::ClappedError> for ServeError {
    fn from(e: clapped_core::ClappedError) -> Self {
        ServeError::Core(e)
    }
}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, ServeError>;
