//! The wire protocol: line-delimited JSON requests and replies.
//!
//! Every message is one JSON object on one line, newline-terminated.
//! Requests carry an `op` field; replies carry `ok` (with `reply`
//! naming the variant on success, or `error`/`detail` on failure):
//!
//! ```text
//! -> {"op":"submit","tenant":"acme","spec":{...}}
//! <- {"ok":true,"reply":"submitted","job":"j3"}
//! -> {"op":"status","job":"j3"}
//! <- {"ok":true,"reply":"status","job":"j3","state":"running",...}
//! -> {"op":"nonsense"}
//! <- {"ok":false,"error":"unknown-op","detail":"op `nonsense`"}
//! ```
//!
//! The codec is hand-rolled over `serde_json::Value` (the vendored
//! serde_json has no derive), mirroring the `clapped-dse` checkpoint
//! codec: explicit field reads, structured errors, and `f64` values
//! that survive the JSON round trip bit-exactly (shortest-round-trip
//! formatting on encode, exact parse on decode) — the property the
//! bit-identical resume guarantee leans on.

use crate::{Result, ServeError};
use clapped_core::AppKind;
use clapped_dse::{CheckpointCodec, Configuration, MboConfig};
use clapped_exec::CacheStats;
use serde_json::{json, Map, Value};

/// Default bound on one request line (bytes, newline included).
pub const DEFAULT_MAX_REQUEST_BYTES: usize = 1 << 20;

/// Structured protocol error codes, stable across releases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line was not valid JSON or missed required fields.
    Malformed,
    /// The request line exceeded the size bound.
    Oversized,
    /// The connection idled past the per-connection read timeout.
    Timeout,
    /// The `op` field named no known operation.
    UnknownOp,
    /// The referenced job id does not exist.
    UnknownJob,
    /// The job spec decoded but described an invalid job.
    BadSpec,
    /// The server is draining and accepts no new work.
    ShuttingDown,
}

impl ErrorCode {
    /// The wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Malformed => "malformed",
            ErrorCode::Oversized => "oversized",
            ErrorCode::Timeout => "timeout",
            ErrorCode::UnknownOp => "unknown-op",
            ErrorCode::UnknownJob => "unknown-job",
            ErrorCode::BadSpec => "bad-spec",
            ErrorCode::ShuttingDown => "shutting-down",
        }
    }

    /// Parses a wire token.
    pub fn parse(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "malformed" => ErrorCode::Malformed,
            "oversized" => ErrorCode::Oversized,
            "timeout" => ErrorCode::Timeout,
            "unknown-op" => ErrorCode::UnknownOp,
            "unknown-job" => ErrorCode::UnknownJob,
            "bad-spec" => ErrorCode::BadSpec,
            "shutting-down" => ErrorCode::ShuttingDown,
            _ => return None,
        })
    }
}

fn malformed(detail: impl Into<String>) -> ServeError {
    ServeError::Protocol { code: ErrorCode::Malformed, detail: detail.into() }
}

fn bad_spec(detail: impl Into<String>) -> ServeError {
    ServeError::Protocol { code: ErrorCode::BadSpec, detail: detail.into() }
}

fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value> {
    v.get(key).ok_or_else(|| malformed(format!("missing field `{key}`")))
}

fn u64_of(v: &Value, key: &str) -> Result<u64> {
    field(v, key)?.as_u64().ok_or_else(|| malformed(format!("field `{key}` must be an integer")))
}

fn f64_of(v: &Value, key: &str) -> Result<f64> {
    field(v, key)?.as_f64().ok_or_else(|| malformed(format!("field `{key}` must be a number")))
}

fn str_of<'a>(v: &'a Value, key: &str) -> Result<&'a str> {
    field(v, key)?.as_str().ok_or_else(|| malformed(format!("field `{key}` must be a string")))
}

fn bool_of(v: &Value, key: &str) -> Result<bool> {
    field(v, key)?.as_bool().ok_or_else(|| malformed(format!("field `{key}` must be a bool")))
}

fn opt_u64(v: &Value, key: &str) -> Result<Option<u64>> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(x) => {
            x.as_u64().map(Some).ok_or_else(|| malformed(format!("field `{key}` must be an integer")))
        }
    }
}

fn opt_f64(v: &Value, key: &str) -> Result<Option<f64>> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(x) => {
            x.as_f64().map(Some).ok_or_else(|| malformed(format!("field `{key}` must be a number")))
        }
    }
}

fn opt_str(v: &Value, key: &str) -> Result<Option<String>> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(x) => x
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| malformed(format!("field `{key}` must be a string"))),
    }
}

fn insert_opt(map: &mut Map, key: &str, value: Option<Value>) {
    if let Some(v) = value {
        map.insert(key.to_string(), v);
    }
}

fn as_object(v: Value, what: &str) -> Result<Map> {
    match v {
        Value::Object(map) => Ok(map),
        _ => Err(malformed(format!("{what} must be a JSON object"))),
    }
}

/// One DSE job: the framework recipe, the MBO plan, and the tenant's
/// quality/budget/deadline constraints.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// The behavioural application.
    pub app: AppKind,
    /// Workload image side length.
    pub image_size: usize,
    /// Injected noise sigma (Gaussian application).
    pub noise_sigma: f64,
    /// Framework master seed (workload generation).
    pub seed: u64,
    /// MBO loop parameters (including the search seed).
    pub mbo: MboConfig,
    /// Quality constraint: feasible Pareto points keep application
    /// error at or below this many percent.
    pub max_error_percent: Option<f64>,
    /// Tenant budget: at most this many true evaluations.
    pub max_evaluations: Option<usize>,
    /// Wall-clock deadline (milliseconds from submission); the job
    /// fails with `deadline exceeded` once it passes.
    pub deadline_ms: Option<u64>,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            app: AppKind::GaussianDenoise,
            image_size: 32,
            noise_sigma: 12.0,
            seed: 1,
            mbo: clapped_core::ExploreOptions::default().mbo,
            max_error_percent: None,
            max_evaluations: None,
            deadline_ms: None,
        }
    }
}

fn app_to_str(app: AppKind) -> &'static str {
    match app {
        AppKind::GaussianDenoise => "gaussian",
        AppKind::SobelEdge => "sobel",
    }
}

fn app_from_str(s: &str) -> Result<AppKind> {
    match s {
        "gaussian" => Ok(AppKind::GaussianDenoise),
        "sobel" => Ok(AppKind::SobelEdge),
        other => Err(bad_spec(format!("unknown app `{other}` (expected gaussian|sobel)"))),
    }
}

fn mbo_to_json(mbo: &MboConfig) -> Value {
    json!({
        "initial_samples": mbo.initial_samples,
        "iterations": mbo.iterations,
        "batch": mbo.batch,
        "candidates": mbo.candidates,
        "reference": mbo.reference.clone(),
        "kappa": mbo.kappa,
        "explore_fraction": mbo.explore_fraction,
        "seed": mbo.seed,
    })
}

fn mbo_from_json(v: &Value) -> Result<MboConfig> {
    let reference = field(v, "reference")?
        .as_array()
        .ok_or_else(|| malformed("field `reference` must be an array"))?
        .iter()
        .map(|x| x.as_f64().ok_or_else(|| malformed("`reference` entries must be numbers")))
        .collect::<Result<Vec<f64>>>()?;
    Ok(MboConfig {
        initial_samples: u64_of(v, "initial_samples")? as usize,
        iterations: u64_of(v, "iterations")? as usize,
        batch: u64_of(v, "batch")? as usize,
        candidates: u64_of(v, "candidates")? as usize,
        reference,
        kappa: f64_of(v, "kappa")?,
        explore_fraction: f64_of(v, "explore_fraction")?,
        seed: u64_of(v, "seed")?,
    })
}

impl JobSpec {
    /// Encodes the spec as a JSON value.
    pub fn to_json(&self) -> Value {
        let mut map = as_object(
            json!({
                "app": app_to_str(self.app),
                "image_size": self.image_size,
                "noise_sigma": self.noise_sigma,
                "seed": self.seed,
                "mbo": mbo_to_json(&self.mbo),
            }),
            "spec",
        )
        .unwrap_or_default();
        insert_opt(&mut map, "max_error_percent", self.max_error_percent.map(|x| json!(x)));
        insert_opt(&mut map, "max_evaluations", self.max_evaluations.map(|x| json!(x)));
        insert_opt(&mut map, "deadline_ms", self.deadline_ms.map(|x| json!(x)));
        Value::Object(map)
    }

    /// Decodes a spec, validating its shape.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::Malformed`] for structural problems,
    /// [`ErrorCode::BadSpec`] for well-formed but invalid jobs.
    pub fn from_json(v: &Value) -> Result<JobSpec> {
        let spec = JobSpec {
            app: app_from_str(str_of(v, "app")?)?,
            image_size: u64_of(v, "image_size")? as usize,
            noise_sigma: f64_of(v, "noise_sigma")?,
            seed: u64_of(v, "seed")?,
            mbo: mbo_from_json(field(v, "mbo")?)?,
            max_error_percent: opt_f64(v, "max_error_percent")?,
            max_evaluations: opt_u64(v, "max_evaluations")?.map(|x| x as usize),
            deadline_ms: opt_u64(v, "deadline_ms")?,
        };
        if spec.image_size < 4 || spec.image_size > 4096 {
            return Err(bad_spec(format!("image_size {} outside [4, 4096]", spec.image_size)));
        }
        if !spec.noise_sigma.is_finite() || spec.noise_sigma < 0.0 {
            return Err(bad_spec("noise_sigma must be finite and non-negative"));
        }
        if spec.mbo.batch == 0 || spec.mbo.candidates == 0 || spec.mbo.initial_samples == 0 {
            return Err(bad_spec("mbo batch, candidates and initial_samples must be positive"));
        }
        if spec.mbo.reference.len() != 2 {
            return Err(bad_spec("mbo reference must have exactly 2 objectives"));
        }
        Ok(spec)
    }
}

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, not yet stepped.
    Queued,
    /// In flight (between phases it sits in the queue but keeps this
    /// state — it is the crash-recovery marker for resumption).
    Running,
    /// Completed; the Pareto front is available.
    Done,
    /// Aborted (evaluation error, bad session, or deadline).
    Failed,
}

impl JobState {
    /// The wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }

    /// Parses a wire token.
    pub fn parse(s: &str) -> Option<JobState> {
        Some(match s {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "done" => JobState::Done,
            "failed" => JobState::Failed,
            _ => return None,
        })
    }

    /// Whether the job has reached a terminal state.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed)
    }
}

/// A progress snapshot of one job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    /// Server-assigned job id.
    pub job: String,
    /// Owning tenant.
    pub tenant: String,
    /// Lifecycle state.
    pub state: JobState,
    /// True evaluations performed so far.
    pub evaluations_done: u64,
    /// Evaluations the (budget-clamped) plan will make in total.
    pub evaluations_planned: u64,
    /// Surrogate iterations completed.
    pub iterations_done: u64,
    /// Hypervolume after the most recent phase.
    pub hypervolume: f64,
    /// Global completion sequence number (terminal states only) —
    /// `finish_seq` of job A < job B means A finished first.
    pub finish_seq: Option<u64>,
    /// Failure detail (failed state only).
    pub error: Option<String>,
}

impl JobStatus {
    /// Encodes the status as a JSON value.
    pub fn to_json(&self) -> Value {
        let mut map = as_object(
            json!({
                "job": self.job.clone(),
                "tenant": self.tenant.clone(),
                "state": self.state.as_str(),
                "evaluations_done": self.evaluations_done,
                "evaluations_planned": self.evaluations_planned,
                "iterations_done": self.iterations_done,
                "hypervolume": self.hypervolume,
            }),
            "status",
        )
        .unwrap_or_default();
        insert_opt(&mut map, "finish_seq", self.finish_seq.map(|x| json!(x)));
        insert_opt(&mut map, "error", self.error.clone().map(Value::String));
        Value::Object(map)
    }

    /// Decodes a status.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::Malformed`] on structural problems.
    pub fn from_json(v: &Value) -> Result<JobStatus> {
        let state_token = str_of(v, "state")?;
        let state = JobState::parse(state_token)
            .ok_or_else(|| malformed(format!("unknown job state `{state_token}`")))?;
        Ok(JobStatus {
            job: str_of(v, "job")?.to_string(),
            tenant: str_of(v, "tenant")?.to_string(),
            state,
            evaluations_done: u64_of(v, "evaluations_done")?,
            evaluations_planned: u64_of(v, "evaluations_planned")?,
            iterations_done: u64_of(v, "iterations_done")?,
            hypervolume: f64_of(v, "hypervolume")?,
            finish_seq: opt_u64(v, "finish_seq")?,
            error: opt_str(v, "error")?,
        })
    }
}

/// One Pareto design point in a result reply.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoEntry {
    /// The configuration (full cross-layer DoF assignment).
    pub config: Configuration,
    /// True application error (%).
    pub error_percent: f64,
    /// True LUT count.
    pub luts: f64,
    /// Whether the point satisfies the job's quality constraint.
    pub feasible: bool,
}

impl ParetoEntry {
    /// Encodes the entry as a JSON value.
    pub fn to_json(&self) -> Value {
        json!({
            "config": self.config.to_checkpoint_json(),
            "error_percent": self.error_percent,
            "luts": self.luts,
            "feasible": self.feasible,
        })
    }

    /// Decodes an entry.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::Malformed`] on structural problems.
    pub fn from_json(v: &Value) -> Result<ParetoEntry> {
        let config = Configuration::from_checkpoint_json(field(v, "config")?)
            .map_err(|e| malformed(format!("bad pareto config: {e}")))?;
        Ok(ParetoEntry {
            config,
            error_percent: f64_of(v, "error_percent")?,
            luts: f64_of(v, "luts")?,
            feasible: bool_of(v, "feasible")?,
        })
    }
}

/// Aggregate server counters (the `stats` reply).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ServerStats {
    /// Jobs accepted since this process started (recovered jobs
    /// included).
    pub jobs_submitted: u64,
    /// Jobs completed.
    pub jobs_done: u64,
    /// Jobs failed.
    pub jobs_failed: u64,
    /// MBO phases stepped.
    pub steps: u64,
    /// Requests served.
    pub requests: u64,
    /// Structured error replies sent.
    pub protocol_errors: u64,
    /// Result-cache counters summed over the framework pool.
    pub cache: CacheStats,
}

fn cache_to_json(c: &CacheStats) -> Value {
    json!({
        "hits": c.hits,
        "disk_hits": c.disk_hits,
        "misses": c.misses,
        "insertions": c.insertions,
        "evictions": c.evictions,
        "disk_corrupt": c.disk_corrupt,
        "lock_contention": c.lock_contention,
        "entries": c.entries,
    })
}

fn cache_from_json(v: &Value) -> Result<CacheStats> {
    Ok(CacheStats {
        hits: u64_of(v, "hits")?,
        disk_hits: u64_of(v, "disk_hits")?,
        misses: u64_of(v, "misses")?,
        insertions: u64_of(v, "insertions")?,
        evictions: u64_of(v, "evictions")?,
        disk_corrupt: u64_of(v, "disk_corrupt")?,
        lock_contention: u64_of(v, "lock_contention")?,
        entries: u64_of(v, "entries")? as usize,
    })
}

impl ServerStats {
    /// Encodes the stats as a JSON value.
    pub fn to_json(&self) -> Value {
        json!({
            "jobs_submitted": self.jobs_submitted,
            "jobs_done": self.jobs_done,
            "jobs_failed": self.jobs_failed,
            "steps": self.steps,
            "requests": self.requests,
            "protocol_errors": self.protocol_errors,
            "cache": cache_to_json(&self.cache),
        })
    }

    /// Decodes the stats.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::Malformed`] on structural problems.
    pub fn from_json(v: &Value) -> Result<ServerStats> {
        Ok(ServerStats {
            jobs_submitted: u64_of(v, "jobs_submitted")?,
            jobs_done: u64_of(v, "jobs_done")?,
            jobs_failed: u64_of(v, "jobs_failed")?,
            steps: u64_of(v, "steps")?,
            requests: u64_of(v, "requests")?,
            protocol_errors: u64_of(v, "protocol_errors")?,
            cache: cache_from_json(field(v, "cache")?)?,
        })
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Submit a job for `tenant`.
    Submit {
        /// Tenant name (fairness domain).
        tenant: String,
        /// The job.
        spec: JobSpec,
    },
    /// Progress of one job.
    Status {
        /// Job id.
        job: String,
    },
    /// Final (or partial) Pareto front of one job.
    Result {
        /// Job id.
        job: String,
    },
    /// All job statuses.
    Jobs,
    /// Aggregate server counters.
    Stats,
    /// Graceful drain: checkpoint everything and exit.
    Shutdown,
}

impl Request {
    /// Encodes the request as a JSON value.
    pub fn to_json(&self) -> Value {
        match self {
            Request::Ping => json!({"op": "ping"}),
            Request::Submit { tenant, spec } => {
                json!({"op": "submit", "tenant": tenant.clone(), "spec": spec.to_json()})
            }
            Request::Status { job } => json!({"op": "status", "job": job.clone()}),
            Request::Result { job } => json!({"op": "result", "job": job.clone()}),
            Request::Jobs => json!({"op": "jobs"}),
            Request::Stats => json!({"op": "stats"}),
            Request::Shutdown => json!({"op": "shutdown"}),
        }
    }

    /// Encodes the request as one wire line (no trailing newline).
    pub fn encode(&self) -> String {
        self.to_json().to_string()
    }

    /// Decodes a request from a JSON value.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::Malformed`] / [`ErrorCode::BadSpec`] /
    /// [`ErrorCode::UnknownOp`] as appropriate.
    pub fn from_json(v: &Value) -> Result<Request> {
        match str_of(v, "op")? {
            "ping" => Ok(Request::Ping),
            "submit" => {
                let tenant = str_of(v, "tenant")?.to_string();
                if tenant.is_empty() {
                    return Err(bad_spec("tenant must be non-empty"));
                }
                Ok(Request::Submit { tenant, spec: JobSpec::from_json(field(v, "spec")?)? })
            }
            "status" => Ok(Request::Status { job: str_of(v, "job")?.to_string() }),
            "result" => Ok(Request::Result { job: str_of(v, "job")?.to_string() }),
            "jobs" => Ok(Request::Jobs),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(ServeError::Protocol {
                code: ErrorCode::UnknownOp,
                detail: format!("op `{other}`"),
            }),
        }
    }

    /// Decodes a request from one wire line.
    ///
    /// # Errors
    ///
    /// As [`Request::from_json`], plus [`ErrorCode::Malformed`] for
    /// invalid JSON.
    pub fn decode(line: &str) -> Result<Request> {
        let v = serde_json::from_str(line).map_err(|e| malformed(format!("invalid JSON: {e}")))?;
        Request::from_json(&v)
    }
}

/// A server reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Liveness answer.
    Pong,
    /// Job accepted.
    Submitted {
        /// The assigned job id.
        job: String,
    },
    /// One job's progress.
    Status(JobStatus),
    /// One job's Pareto front (empty until the job completes).
    JobResult {
        /// The job's status at reply time.
        status: JobStatus,
        /// Non-dominated points, search order.
        pareto: Vec<ParetoEntry>,
    },
    /// All job statuses (sorted by job id).
    Jobs(Vec<JobStatus>),
    /// Aggregate counters.
    Stats(ServerStats),
    /// Acknowledged shutdown.
    Bye,
    /// Structured failure.
    Error {
        /// The error code.
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
    },
}

impl Reply {
    /// Encodes the reply as a JSON value.
    pub fn to_json(&self) -> Value {
        match self {
            Reply::Pong => json!({"ok": true, "reply": "pong"}),
            Reply::Submitted { job } => {
                json!({"ok": true, "reply": "submitted", "job": job.clone()})
            }
            Reply::Status(status) => {
                let mut map = as_object(status.to_json(), "status").unwrap_or_default();
                map.insert("ok".to_string(), Value::Bool(true));
                map.insert("reply".to_string(), Value::String("status".to_string()));
                Value::Object(map)
            }
            Reply::JobResult { status, pareto } => {
                let entries: Vec<Value> = pareto.iter().map(ParetoEntry::to_json).collect();
                json!({
                    "ok": true,
                    "reply": "result",
                    "status": status.to_json(),
                    "pareto": entries,
                })
            }
            Reply::Jobs(statuses) => {
                let entries: Vec<Value> = statuses.iter().map(JobStatus::to_json).collect();
                json!({"ok": true, "reply": "jobs", "jobs": entries})
            }
            Reply::Stats(stats) => {
                let mut map = as_object(stats.to_json(), "stats").unwrap_or_default();
                map.insert("ok".to_string(), Value::Bool(true));
                map.insert("reply".to_string(), Value::String("stats".to_string()));
                Value::Object(map)
            }
            Reply::Bye => json!({"ok": true, "reply": "bye"}),
            Reply::Error { code, detail } => {
                json!({"ok": false, "error": code.as_str(), "detail": detail.clone()})
            }
        }
    }

    /// Encodes the reply as one wire line (no trailing newline).
    pub fn encode(&self) -> String {
        self.to_json().to_string()
    }

    /// Decodes a reply from a JSON value.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::Malformed`] on structural problems.
    pub fn from_json(v: &Value) -> Result<Reply> {
        if !bool_of(v, "ok")? {
            let token = str_of(v, "error")?;
            let code = ErrorCode::parse(token)
                .ok_or_else(|| malformed(format!("unknown error code `{token}`")))?;
            return Ok(Reply::Error {
                code,
                detail: opt_str(v, "detail")?.unwrap_or_default(),
            });
        }
        match str_of(v, "reply")? {
            "pong" => Ok(Reply::Pong),
            "submitted" => Ok(Reply::Submitted { job: str_of(v, "job")?.to_string() }),
            "status" => Ok(Reply::Status(JobStatus::from_json(v)?)),
            "result" => {
                let pareto = field(v, "pareto")?
                    .as_array()
                    .ok_or_else(|| malformed("field `pareto` must be an array"))?
                    .iter()
                    .map(ParetoEntry::from_json)
                    .collect::<Result<Vec<ParetoEntry>>>()?;
                Ok(Reply::JobResult { status: JobStatus::from_json(field(v, "status")?)?, pareto })
            }
            "jobs" => {
                let jobs = field(v, "jobs")?
                    .as_array()
                    .ok_or_else(|| malformed("field `jobs` must be an array"))?
                    .iter()
                    .map(JobStatus::from_json)
                    .collect::<Result<Vec<JobStatus>>>()?;
                Ok(Reply::Jobs(jobs))
            }
            "stats" => Ok(Reply::Stats(ServerStats::from_json(v)?)),
            "bye" => Ok(Reply::Bye),
            other => Err(malformed(format!("unknown reply `{other}`"))),
        }
    }

    /// Decodes a reply from one wire line.
    ///
    /// # Errors
    ///
    /// As [`Reply::from_json`], plus [`ErrorCode::Malformed`] for
    /// invalid JSON.
    pub fn decode(line: &str) -> Result<Reply> {
        let v = serde_json::from_str(line).map_err(|e| malformed(format!("invalid JSON: {e}")))?;
        Reply::from_json(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_round_trip() {
        let reqs = vec![
            Request::Ping,
            Request::Submit {
                tenant: "acme".to_string(),
                spec: JobSpec {
                    max_error_percent: Some(7.5),
                    max_evaluations: Some(40),
                    deadline_ms: Some(60_000),
                    ..JobSpec::default()
                },
            },
            Request::Status { job: "j7".to_string() },
            Request::Result { job: "j7".to_string() },
            Request::Jobs,
            Request::Stats,
            Request::Shutdown,
        ];
        for req in reqs {
            let line = req.encode();
            assert!(!line.contains('\n'), "one line per message: {line}");
            assert_eq!(Request::decode(&line).unwrap(), req);
        }
    }

    #[test]
    fn error_replies_carry_structured_codes() {
        for code in [
            ErrorCode::Malformed,
            ErrorCode::Oversized,
            ErrorCode::Timeout,
            ErrorCode::UnknownOp,
            ErrorCode::UnknownJob,
            ErrorCode::BadSpec,
            ErrorCode::ShuttingDown,
        ] {
            let reply = Reply::Error { code, detail: "why".to_string() };
            assert_eq!(Reply::decode(&reply.encode()).unwrap(), reply);
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
        }
    }

    #[test]
    fn malformed_inputs_are_structured_not_panics() {
        assert!(matches!(
            Request::decode("{not json"),
            Err(ServeError::Protocol { code: ErrorCode::Malformed, .. })
        ));
        assert!(matches!(
            Request::decode("{\"op\":\"launch-missiles\"}"),
            Err(ServeError::Protocol { code: ErrorCode::UnknownOp, .. })
        ));
        assert!(matches!(
            Request::decode("{\"op\":\"status\"}"),
            Err(ServeError::Protocol { code: ErrorCode::Malformed, .. })
        ));
        // Structurally fine, semantically bad: image_size of zero.
        let mut spec = JobSpec::default().to_json();
        if let Some(map) = spec.as_object_mut() {
            map.insert("image_size".to_string(), json!(0u64));
        }
        let line = json!({"op": "submit", "tenant": "t", "spec": spec}).to_string();
        assert!(matches!(
            Request::decode(&line),
            Err(ServeError::Protocol { code: ErrorCode::BadSpec, .. })
        ));
    }

    #[test]
    fn f64_fields_survive_the_wire_bit_exactly() {
        let awkward = [0.1 + 0.2, 1.0 / 3.0, f64::MIN_POSITIVE, 12345.678901234567];
        for &x in &awkward {
            let status = JobStatus {
                job: "j1".to_string(),
                tenant: "t".to_string(),
                state: JobState::Running,
                evaluations_done: 3,
                evaluations_planned: 12,
                iterations_done: 1,
                hypervolume: x,
                finish_seq: None,
                error: None,
            };
            let reply = Reply::Status(status.clone());
            let Reply::Status(decoded) = Reply::decode(&reply.encode()).unwrap() else {
                panic!("wrong variant");
            };
            assert_eq!(decoded.hypervolume.to_bits(), x.to_bits());
        }
    }
}
