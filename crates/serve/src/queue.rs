//! Fair multi-tenant scheduling.
//!
//! [`FairQueue`] is a per-tenant round-robin: each tenant owns a FIFO
//! of job ids, and `pop` serves tenants in cyclic order, so a tenant
//! that floods the queue with N jobs cannot starve a tenant with one.
//! With tenants `a` and `b` holding `[a1 a2 a3]` and `[b1]`, the drain
//! order is `a1 b1 a2 a3` — `b1` waits behind at most one job per
//! competing tenant, never behind a whole burst.
//!
//! The structure is intentionally not thread-safe: the server guards
//! it with its core mutex and uses a condvar for wakeups, which keeps
//! the fairness invariant trivially auditable.

use std::collections::{BTreeMap, VecDeque};

/// A per-tenant round-robin job queue.
///
/// Tenants cycle in lexicographic order starting strictly after the
/// tenant served last, so drain order is deterministic given the same
/// push sequence.
#[derive(Debug, Default)]
pub struct FairQueue {
    lanes: BTreeMap<String, VecDeque<String>>,
    /// The tenant served most recently; the next pop starts strictly
    /// after it (wrapping).
    cursor: Option<String>,
    len: usize,
}

impl FairQueue {
    /// Creates an empty queue.
    pub fn new() -> FairQueue {
        FairQueue::default()
    }

    /// Enqueues `job` on `tenant`'s lane.
    pub fn push(&mut self, tenant: &str, job: String) {
        self.lanes.entry(tenant.to_string()).or_default().push_back(job);
        self.len += 1;
    }

    /// Dequeues the next job in round-robin order, together with its
    /// tenant. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(String, String)> {
        if self.lanes.is_empty() {
            return None;
        }
        // The next lane is the first tenant strictly after the cursor,
        // wrapping to the smallest tenant. `lanes` only holds non-empty
        // lanes, so the first candidate wins.
        let tenant = match &self.cursor {
            Some(cur) => self
                .lanes
                .range::<str, _>((
                    std::ops::Bound::Excluded(cur.as_str()),
                    std::ops::Bound::Unbounded,
                ))
                .next()
                .map(|(t, _)| t.clone())
                .or_else(|| self.lanes.keys().next().cloned()),
            None => self.lanes.keys().next().cloned(),
        }?;
        let lane = self.lanes.get_mut(&tenant)?;
        let job = lane.pop_front()?;
        if lane.is_empty() {
            self.lanes.remove(&tenant);
        }
        self.len -= 1;
        self.cursor = Some(tenant.clone());
        Some((tenant, job))
    }

    /// Number of queued jobs across all tenants.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut FairQueue) -> Vec<String> {
        let mut order = Vec::new();
        while let Some((_, job)) = q.pop() {
            order.push(job);
        }
        order
    }

    #[test]
    fn round_robin_interleaves_tenants() {
        let mut q = FairQueue::new();
        for j in ["a1", "a2", "a3"] {
            q.push("alpha", j.to_string());
        }
        q.push("beta", "b1".to_string());
        q.push("gamma", "g1".to_string());
        assert_eq!(q.len(), 5);
        assert_eq!(drain(&mut q), ["a1", "b1", "g1", "a2", "a3"]);
        assert!(q.is_empty());
    }

    #[test]
    fn a_burst_cannot_starve_a_singleton() {
        let mut q = FairQueue::new();
        for i in 0..50 {
            q.push("hog", format!("h{i}"));
        }
        q.push("small", "s0".to_string());
        let order = drain(&mut q);
        let pos = order.iter().position(|j| j == "s0").unwrap();
        // One hog job may precede it (round-robin), but never the burst.
        assert!(pos <= 1, "singleton served at position {pos}");
    }

    #[test]
    fn cursor_survives_lane_exhaustion() {
        let mut q = FairQueue::new();
        q.push("a", "a1".to_string());
        q.push("b", "b1".to_string());
        assert_eq!(q.pop().unwrap().1, "a1");
        // Lane `a` is now gone; pushing to it again mid-cycle keeps
        // rotation fair: b (after cursor a), then the new a job.
        q.push("a", "a2".to_string());
        assert_eq!(q.pop().unwrap().1, "b1");
        assert_eq!(q.pop().unwrap().1, "a2");
        assert!(q.pop().is_none());
    }

    #[test]
    fn pushes_during_drain_keep_fifo_within_tenant() {
        let mut q = FairQueue::new();
        q.push("t", "j1".to_string());
        q.push("t", "j2".to_string());
        assert_eq!(q.pop().unwrap().1, "j1");
        q.push("t", "j3".to_string());
        assert_eq!(q.pop().unwrap().1, "j2");
        assert_eq!(q.pop().unwrap().1, "j3");
    }
}
