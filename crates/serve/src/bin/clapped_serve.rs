//! The `clapped-serve` daemon binary.
//!
//! Usage:
//!
//! ```text
//! clapped_serve (--uds PATH | --tcp ADDR) [--state-dir DIR]
//!               [--cache-dir DIR] [--workers N] [--exec-jobs N]
//!               [--read-timeout-ms N] [--trace FILE]
//! ```
//!
//! Binds the socket, recovers any persisted jobs, prints one
//! `listening on …` line (the readiness signal scripts wait for), and
//! serves until a `shutdown` op arrives. `--tcp 127.0.0.1:0` picks a
//! free port and prints the resolved address. With `--trace`, per-job
//! lifecycle events stream to the JSONL file in the `clapped-obs`
//! format `trace_check` validates.

use clapped_serve::{Listen, Server, ServerConfig};
use std::path::PathBuf;
use std::process::exit;

struct Args {
    listen: Listen,
    state_dir: PathBuf,
    cache_dir: Option<PathBuf>,
    workers: usize,
    exec_jobs: usize,
    read_timeout_ms: u64,
    trace: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: clapped_serve (--uds PATH | --tcp ADDR) [--state-dir DIR] \
         [--cache-dir DIR] [--workers N] [--exec-jobs N] [--read-timeout-ms N] \
         [--trace FILE]"
    );
    exit(2);
}

fn parse_args() -> Args {
    let mut listen = None;
    let mut state_dir = PathBuf::from("serve-state");
    let mut cache_dir = None;
    let mut workers = 2usize;
    let mut exec_jobs = 1usize;
    let mut read_timeout_ms = 10_000u64;
    let mut trace = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("clapped_serve: {name} needs a value");
                exit(2);
            })
        };
        match flag.as_str() {
            "--uds" => listen = Some(Listen::Uds(PathBuf::from(value("--uds")))),
            "--tcp" => listen = Some(Listen::Tcp(value("--tcp"))),
            "--state-dir" => state_dir = PathBuf::from(value("--state-dir")),
            "--cache-dir" => cache_dir = Some(PathBuf::from(value("--cache-dir"))),
            "--workers" => {
                workers = value("--workers").parse().unwrap_or_else(|_| {
                    eprintln!("clapped_serve: --workers needs an integer");
                    exit(2);
                })
            }
            "--exec-jobs" => {
                exec_jobs = value("--exec-jobs").parse().unwrap_or_else(|_| {
                    eprintln!("clapped_serve: --exec-jobs needs an integer");
                    exit(2);
                })
            }
            "--read-timeout-ms" => {
                read_timeout_ms = value("--read-timeout-ms").parse().unwrap_or_else(|_| {
                    eprintln!("clapped_serve: --read-timeout-ms needs an integer");
                    exit(2);
                })
            }
            "--trace" => trace = Some(PathBuf::from(value("--trace"))),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("clapped_serve: unknown flag `{other}`");
                usage();
            }
        }
    }
    let Some(listen) = listen else {
        eprintln!("clapped_serve: one of --uds or --tcp is required");
        usage();
    };
    Args { listen, state_dir, cache_dir, workers, exec_jobs, read_timeout_ms, trace }
}

fn main() {
    let args = parse_args();
    if let Some(path) = &args.trace {
        if let Err(e) = clapped_obs::enable_jsonl(path) {
            eprintln!("clapped_serve: cannot open trace file {}: {e}", path.display());
            exit(1);
        }
    }

    let mut config = ServerConfig::new(args.listen, args.state_dir);
    config.cache_dir = args.cache_dir;
    config.workers = args.workers;
    config.exec_jobs = args.exec_jobs;
    config.read_timeout_ms = args.read_timeout_ms;

    let server = match Server::start(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("clapped_serve: start failed: {e}");
            exit(1);
        }
    };
    match server.listen_addr() {
        Listen::Tcp(addr) => println!("listening on tcp {addr}"),
        Listen::Uds(path) => println!("listening on uds {}", path.display()),
    }
    server.join();
    clapped_obs::finish();
    // Stdout may be a pipe whose reader is long gone (supervisors often
    // only read the readiness line); the farewell must not panic.
    use std::io::Write as _;
    let _ = writeln!(std::io::stdout(), "clapped_serve: drained, exiting");
}
