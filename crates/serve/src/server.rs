//! The daemon: listener, connection handling, and worker shards.
//!
//! One listener thread accepts connections (TCP or Unix domain socket)
//! and spawns a handler per connection; `workers` shard threads drain
//! the fair queue, each stepping one MBO phase per scheduling quantum
//! so no tenant's campaign monopolizes a shard. All mutable state lives
//! behind one mutex ([`Core`]) plus a condvar for worker wakeups; the
//! expensive immutable halves — [`Clapped`] instances — are pooled by
//! [`ClappedConfig::digest`] and shared across jobs with the same
//! recipe.
//!
//! # Crash safety
//!
//! Every phase boundary persists the session checkpoint and then the
//! job record, both via tmp-file + atomic rename. A `kill -9` at any
//! instant therefore loses at most the phase in flight: on restart the
//! server reloads the records, re-enqueues every non-terminal job and
//! resumes each from its last checkpoint — bit-exactly, because the
//! checkpoint embeds the RNG word position and the evaluation log, and
//! evaluations are content-addressed in the result cache (a re-run
//! phase replays from disk instead of recomputing).

use crate::jobstore::JobStore;
use crate::protocol::{
    ErrorCode, JobSpec, JobState, JobStatus, ParetoEntry, Reply, Request, ServerStats,
    DEFAULT_MAX_REQUEST_BYTES,
};
use crate::queue::FairQueue;
use crate::{Result, ServeError};
use clapped_core::{Clapped, ClappedConfig, ExecConfig, Session, SessionSpec};
use clapped_exec::CacheStats;
use clapped_obs::{emit_event, Deadline};
use serde_json::{json, Map, Value};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread;
use std::time::Duration;

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Listen {
    /// A TCP address, e.g. `127.0.0.1:7878` (`:0` picks a free port;
    /// [`Server::listen_addr`] reports the resolved address).
    Tcp(String),
    /// A Unix domain socket path (created on start, removed on bind if
    /// it already exists).
    Uds(PathBuf),
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Where to listen.
    pub listen: Listen,
    /// State directory: job records and checkpoints.
    pub state_dir: PathBuf,
    /// Shared on-disk result cache (optional). Pointing several
    /// daemons at one directory shares warm evaluations across
    /// processes.
    pub cache_dir: Option<PathBuf>,
    /// Worker shard threads stepping jobs.
    pub workers: usize,
    /// Per-connection read timeout (milliseconds).
    pub read_timeout_ms: u64,
    /// Upper bound on one request line (bytes).
    pub max_request_bytes: usize,
    /// Evaluation threads per framework engine. Keep the product
    /// `workers * exec_jobs` near the host's parallelism.
    pub exec_jobs: usize,
}

impl ServerConfig {
    /// A configuration with conservative defaults: 2 worker shards,
    /// serial evaluation engines, 10 s read timeout, 1 MiB requests.
    pub fn new(listen: Listen, state_dir: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            listen,
            state_dir: state_dir.into(),
            cache_dir: None,
            workers: 2,
            read_timeout_ms: 10_000,
            max_request_bytes: DEFAULT_MAX_REQUEST_BYTES,
            exec_jobs: 1,
        }
    }
}

/// One job's full server-side record.
#[derive(Debug, Clone)]
struct JobRecord {
    id: String,
    seq: u64,
    tenant: String,
    spec: JobSpec,
    state: JobState,
    evaluations_done: u64,
    evaluations_planned: u64,
    iterations_done: u64,
    hypervolume: f64,
    finish_seq: Option<u64>,
    error: Option<String>,
    pareto: Vec<ParetoEntry>,
    /// Armed at submission (re-armed at recovery) from
    /// `spec.deadline_ms`.
    deadline: Deadline,
}

impl JobRecord {
    fn status(&self) -> JobStatus {
        JobStatus {
            job: self.id.clone(),
            tenant: self.tenant.clone(),
            state: self.state,
            evaluations_done: self.evaluations_done,
            evaluations_planned: self.evaluations_planned,
            iterations_done: self.iterations_done,
            hypervolume: self.hypervolume,
            finish_seq: self.finish_seq,
            error: self.error.clone(),
        }
    }

    fn to_json(&self) -> Value {
        let mut map = Map::new();
        map.insert("id".to_string(), Value::String(self.id.clone()));
        map.insert("seq".to_string(), json!(self.seq));
        map.insert("tenant".to_string(), Value::String(self.tenant.clone()));
        map.insert("spec".to_string(), self.spec.to_json());
        map.insert("state".to_string(), Value::String(self.state.as_str().to_string()));
        map.insert("evaluations_done".to_string(), json!(self.evaluations_done));
        map.insert("evaluations_planned".to_string(), json!(self.evaluations_planned));
        map.insert("iterations_done".to_string(), json!(self.iterations_done));
        map.insert("hypervolume".to_string(), json!(self.hypervolume));
        if let Some(seq) = self.finish_seq {
            map.insert("finish_seq".to_string(), json!(seq));
        }
        if let Some(e) = &self.error {
            map.insert("error".to_string(), Value::String(e.clone()));
        }
        let pareto: Vec<Value> = self.pareto.iter().map(ParetoEntry::to_json).collect();
        map.insert("pareto".to_string(), Value::Array(pareto));
        Value::Object(map)
    }

    fn from_json(v: &Value) -> Result<JobRecord> {
        let bad = |what: &str| ServeError::State(format!("job record: {what}"));
        let id = v.get("id").and_then(Value::as_str).ok_or_else(|| bad("missing id"))?;
        let state_token =
            v.get("state").and_then(Value::as_str).ok_or_else(|| bad("missing state"))?;
        let state = JobState::parse(state_token)
            .ok_or_else(|| bad(&format!("unknown state `{state_token}`")))?;
        let spec = JobSpec::from_json(v.get("spec").ok_or_else(|| bad("missing spec"))?)
            .map_err(|e| bad(&format!("bad spec: {e}")))?;
        let pareto = match v.get("pareto").and_then(Value::as_array) {
            Some(entries) => entries
                .iter()
                .map(ParetoEntry::from_json)
                .collect::<Result<Vec<ParetoEntry>>>()
                .map_err(|e| bad(&format!("bad pareto: {e}")))?,
            None => Vec::new(),
        };
        let deadline = Deadline::from_budget(spec.deadline_ms.map(Duration::from_millis));
        Ok(JobRecord {
            id: id.to_string(),
            seq: v.get("seq").and_then(Value::as_u64).ok_or_else(|| bad("missing seq"))?,
            tenant: v
                .get("tenant")
                .and_then(Value::as_str)
                .ok_or_else(|| bad("missing tenant"))?
                .to_string(),
            spec,
            state,
            evaluations_done: v.get("evaluations_done").and_then(Value::as_u64).unwrap_or(0),
            evaluations_planned: v.get("evaluations_planned").and_then(Value::as_u64).unwrap_or(0),
            iterations_done: v.get("iterations_done").and_then(Value::as_u64).unwrap_or(0),
            hypervolume: v.get("hypervolume").and_then(Value::as_f64).unwrap_or(0.0),
            finish_seq: v.get("finish_seq").and_then(Value::as_u64),
            error: v.get("error").and_then(Value::as_str).map(str::to_string),
            pareto,
            deadline,
        })
    }
}

/// Mutable server state, guarded by one mutex.
#[derive(Debug, Default)]
struct Core {
    queue: FairQueue,
    jobs: BTreeMap<String, JobRecord>,
    next_seq: u64,
    next_finish: u64,
    shutting_down: bool,
}

/// Everything the listener, connections and workers share.
struct Shared {
    config: ServerConfig,
    core: Mutex<Core>,
    work: Condvar,
    /// In-flight exploration sessions, keyed by job id. A job id is in
    /// at most one place at a time — the queue or a worker's hands — so
    /// entries are removed while being stepped.
    sessions: Mutex<BTreeMap<String, Session>>,
    /// Framework instances pooled by recipe digest: jobs with the same
    /// recipe share an instance, its caches and its operator library.
    pools: Mutex<BTreeMap<u64, Arc<Clapped>>>,
    store: JobStore,
    requests: AtomicU64,
    protocol_errors: AtomicU64,
    steps: AtomicU64,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Shared {
    fn framework_config(&self, spec: &JobSpec) -> ClappedConfig {
        let mut builder = Clapped::builder()
            .application(spec.app)
            .image_size(spec.image_size)
            .noise_sigma(spec.noise_sigma)
            .seed(spec.seed)
            .exec(ExecConfig::with_jobs(self.config.exec_jobs.max(1)));
        if let Some(dir) = &self.config.cache_dir {
            builder = builder.disk_cache(dir.clone());
        }
        builder.into_config()
    }

    /// Gets or builds the pooled framework for a recipe. Building
    /// happens inside the pool lock so two workers racing on the same
    /// recipe do not duplicate the (expensive) instantiation.
    fn framework_for(&self, spec: &JobSpec) -> Result<Arc<Clapped>> {
        let config = self.framework_config(spec);
        let digest = config.digest();
        let mut pools = lock(&self.pools);
        if let Some(fw) = pools.get(&digest) {
            return Ok(Arc::clone(fw));
        }
        let fw = Arc::new(config.instantiate()?);
        pools.insert(digest, Arc::clone(&fw));
        Ok(fw)
    }

    fn session_spec(spec: &JobSpec) -> SessionSpec {
        SessionSpec {
            mbo: spec.mbo.clone(),
            max_error_percent: spec.max_error_percent,
            max_evaluations: spec.max_evaluations,
            ..SessionSpec::default()
        }
    }

    fn persist_record(&self, record: &JobRecord) {
        if let Err(e) = self.store.save_job(&record.id, &record.to_json()) {
            emit_event(
                "serve.store_error",
                &[("job", &record.id), ("detail", &e.to_string())],
                &[],
            );
        }
    }

    fn emit_job_event(&self, record: &JobRecord) {
        emit_event(
            "serve.job",
            &[
                ("job", &record.id),
                ("tenant", &record.tenant),
                ("state", record.state.as_str()),
            ],
            &[
                ("evals", record.evaluations_done as f64),
                ("hv", record.hypervolume),
            ],
        );
    }

    fn stats(&self) -> ServerStats {
        let (submitted, done, failed) = {
            let core = lock(&self.core);
            let done = core.jobs.values().filter(|r| r.state == JobState::Done).count() as u64;
            let failed = core.jobs.values().filter(|r| r.state == JobState::Failed).count() as u64;
            (core.jobs.len() as u64, done, failed)
        };
        let mut cache = CacheStats::default();
        for fw in lock(&self.pools).values() {
            let s = fw.cache_stats();
            cache.hits += s.hits;
            cache.disk_hits += s.disk_hits;
            cache.misses += s.misses;
            cache.insertions += s.insertions;
            cache.evictions += s.evictions;
            cache.disk_corrupt += s.disk_corrupt;
            cache.lock_contention += s.lock_contention;
            cache.entries += s.entries;
        }
        ServerStats {
            jobs_submitted: submitted,
            jobs_done: done,
            jobs_failed: failed,
            steps: self.steps.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            cache,
        }
    }
}

// ---------------------------------------------------------------------------
// Request handling
// ---------------------------------------------------------------------------

fn handle_request(shared: &Arc<Shared>, request: Request) -> Reply {
    shared.requests.fetch_add(1, Ordering::Relaxed);
    match request {
        Request::Ping => Reply::Pong,
        Request::Submit { tenant, spec } => {
            let record = {
                let mut core = lock(&shared.core);
                if core.shutting_down {
                    return Reply::Error {
                        code: ErrorCode::ShuttingDown,
                        detail: "server is draining; resubmit after restart".to_string(),
                    };
                }
                let seq = core.next_seq;
                core.next_seq += 1;
                let id = format!("j{seq}");
                let deadline =
                    Deadline::from_budget(spec.deadline_ms.map(Duration::from_millis));
                let planned =
                    spec.max_evaluations.map_or(u64::MAX, |b| b as u64).min(
                        (spec.mbo.initial_samples + spec.mbo.iterations * spec.mbo.batch) as u64,
                    );
                let record = JobRecord {
                    id: id.clone(),
                    seq,
                    tenant: tenant.clone(),
                    spec,
                    state: JobState::Queued,
                    evaluations_done: 0,
                    evaluations_planned: planned,
                    iterations_done: 0,
                    hypervolume: 0.0,
                    finish_seq: None,
                    error: None,
                    pareto: Vec::new(),
                    deadline,
                };
                core.jobs.insert(id.clone(), record.clone());
                core.queue.push(&tenant, id);
                record
            };
            shared.persist_record(&record);
            shared.emit_job_event(&record);
            shared.work.notify_all();
            Reply::Submitted { job: record.id }
        }
        Request::Status { job } => match lock(&shared.core).jobs.get(&job) {
            Some(record) => Reply::Status(record.status()),
            None => unknown_job(&job),
        },
        Request::Result { job } => match lock(&shared.core).jobs.get(&job) {
            Some(record) => Reply::JobResult {
                status: record.status(),
                pareto: record.pareto.clone(),
            },
            None => unknown_job(&job),
        },
        Request::Jobs => {
            let core = lock(&shared.core);
            let mut records: Vec<&JobRecord> = core.jobs.values().collect();
            records.sort_by_key(|r| r.seq);
            Reply::Jobs(records.into_iter().map(JobRecord::status).collect())
        }
        Request::Stats => Reply::Stats(shared.stats()),
        Request::Shutdown => {
            lock(&shared.core).shutting_down = true;
            shared.work.notify_all();
            Reply::Bye
        }
    }
}

fn unknown_job(job: &str) -> Reply {
    Reply::Error {
        code: ErrorCode::UnknownJob,
        detail: format!("no job `{job}`"),
    }
}

// ---------------------------------------------------------------------------
// Worker shards
// ---------------------------------------------------------------------------

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let job_id = {
            let mut core = lock(&shared.core);
            loop {
                if core.shutting_down {
                    return;
                }
                if let Some((_tenant, id)) = core.queue.pop() {
                    if let Some(record) = core.jobs.get_mut(&id) {
                        record.state = JobState::Running;
                    }
                    break id;
                }
                let (guard, _timeout) = shared
                    .work
                    .wait_timeout(core, Duration::from_millis(250))
                    .unwrap_or_else(PoisonError::into_inner);
                core = guard;
            }
        };
        step_job(&shared, &job_id);
    }
}

/// Runs one MBO phase of `job_id` and persists the outcome. The job is
/// re-enqueued unless it reached a terminal state.
fn step_job(shared: &Arc<Shared>, job_id: &str) {
    let Some((spec, tenant, deadline)) = ({
        let core = lock(&shared.core);
        core.jobs.get(job_id).map(|r| (r.spec.clone(), r.tenant.clone(), r.deadline))
    }) else {
        return;
    };

    if deadline.expired() {
        finalize(shared, job_id, None, Err("deadline exceeded".to_string()));
        return;
    }

    // Take (or build) the session. Framework instantiation and session
    // resume run outside the core lock: they are the expensive path.
    let mut session = match lock(&shared.sessions).remove(job_id) {
        Some(s) => s,
        None => match open_session(shared, job_id, &spec) {
            Ok(s) => s,
            Err(e) => {
                finalize(shared, job_id, None, Err(format!("session open: {e}")));
                return;
            }
        },
    };

    let step = session.step();
    shared.steps.fetch_add(1, Ordering::Relaxed);
    match step {
        Err(e) => finalize(shared, job_id, Some(session), Err(format!("step: {e}"))),
        Ok(complete) => {
            // Checkpoint BEFORE the record: if we die between the two, the
            // checkpoint is ahead of the record, and resume trusts the
            // checkpoint (progress is recomputed from it).
            if let Err(e) = shared.store.save_checkpoint(job_id, &session.checkpoint()) {
                finalize(shared, job_id, Some(session), Err(format!("checkpoint: {e}")));
                return;
            }
            if complete {
                finalize(shared, job_id, Some(session), Ok(()));
            } else {
                let progress = session.progress();
                lock(&shared.sessions).insert(job_id.to_string(), session);
                let record = {
                    let mut core = lock(&shared.core);
                    let Some(record) = core.jobs.get_mut(job_id) else { return };
                    record.evaluations_done = progress.evaluations_done as u64;
                    record.evaluations_planned = progress.evaluations_planned as u64;
                    record.iterations_done = progress.iterations_done as u64;
                    record.hypervolume = progress.hypervolume;
                    let record = record.clone();
                    core.queue.push(&tenant, job_id.to_string());
                    record
                };
                shared.persist_record(&record);
                shared.emit_job_event(&record);
                shared.work.notify_all();
            }
        }
    }
}

fn open_session(shared: &Arc<Shared>, job_id: &str, spec: &JobSpec) -> Result<Session> {
    let fw = shared.framework_for(spec)?;
    let session_spec = Shared::session_spec(spec);
    let session = match shared.store.load_checkpoint(job_id) {
        Some(checkpoint) => Session::resume(fw, &checkpoint, &session_spec)?,
        None => Session::new(fw, &session_spec)?,
    };
    Ok(session)
}

/// Moves a job to a terminal state: `Ok` completes it with its Pareto
/// front, `Err` fails it with the reason.
fn finalize(
    shared: &Arc<Shared>,
    job_id: &str,
    session: Option<Session>,
    outcome: std::result::Result<(), String>,
) {
    let pareto: Vec<ParetoEntry> = match (&outcome, &session) {
        (Ok(()), Some(session)) => {
            let limit = {
                let core = lock(&shared.core);
                core.jobs.get(job_id).and_then(|r| r.spec.max_error_percent)
            };
            session
                .pareto()
                .into_iter()
                .map(|p| ParetoEntry {
                    error_percent: p.searched[0],
                    luts: p.searched[1],
                    feasible: limit.is_none_or(|l| p.searched[0] <= l),
                    config: p.config,
                })
                .collect()
        }
        _ => Vec::new(),
    };
    let progress = session.as_ref().map(|s| s.progress());
    let record = {
        let mut core = lock(&shared.core);
        let finish = core.next_finish;
        core.next_finish += 1;
        let Some(record) = core.jobs.get_mut(job_id) else { return };
        if let Some(p) = progress {
            record.evaluations_done = p.evaluations_done as u64;
            record.evaluations_planned = p.evaluations_planned as u64;
            record.iterations_done = p.iterations_done as u64;
            record.hypervolume = p.hypervolume;
        }
        match outcome {
            Ok(()) => record.state = JobState::Done,
            Err(reason) => {
                record.state = JobState::Failed;
                record.error = Some(reason);
            }
        }
        record.finish_seq = Some(finish);
        record.pareto = pareto;
        record.clone()
    };
    shared.persist_record(&record);
    shared.store.remove_checkpoint(job_id);
    shared.emit_job_event(&record);
}

// ---------------------------------------------------------------------------
// Connections
// ---------------------------------------------------------------------------

enum Conn {
    Tcp(TcpStream),
    Uds(UnixStream),
}

impl Conn {
    fn set_read_timeout(&self, timeout: Duration) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(Some(timeout)),
            Conn::Uds(s) => s.set_read_timeout(Some(timeout)),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Uds(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Uds(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Uds(s) => s.flush(),
        }
    }
}

/// What one attempt to read a request line produced.
enum LineOutcome {
    /// A complete line (newline stripped).
    Line(String),
    /// Clean end of stream (no buffered partial line).
    Eof,
    /// A protocol violation to answer with a structured error, then
    /// close.
    Violation(ErrorCode, String),
}

/// Reads newline-delimited lines with a hard byte cap.
struct LineReader {
    pending: Vec<u8>,
    cap: usize,
}

impl LineReader {
    fn new(cap: usize) -> LineReader {
        LineReader { pending: Vec::new(), cap }
    }

    fn next_line(&mut self, conn: &mut Conn) -> LineOutcome {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
                let rest = self.pending.split_off(pos + 1);
                let mut line = std::mem::replace(&mut self.pending, rest);
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return match String::from_utf8(line) {
                    Ok(s) => LineOutcome::Line(s),
                    Err(_) => LineOutcome::Violation(
                        ErrorCode::Malformed,
                        "request is not valid UTF-8".to_string(),
                    ),
                };
            }
            if self.pending.len() > self.cap {
                return LineOutcome::Violation(
                    ErrorCode::Oversized,
                    format!("request exceeds {} bytes", self.cap),
                );
            }
            match conn.read(&mut chunk) {
                Ok(0) => {
                    return if self.pending.is_empty() {
                        LineOutcome::Eof
                    } else {
                        LineOutcome::Violation(
                            ErrorCode::Malformed,
                            "connection half-closed mid-request".to_string(),
                        )
                    };
                }
                Ok(n) => self.pending.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return LineOutcome::Violation(
                        ErrorCode::Timeout,
                        "connection idle past the read timeout".to_string(),
                    );
                }
                Err(_) => return LineOutcome::Eof,
            }
        }
    }
}

fn write_reply(conn: &mut Conn, reply: &Reply) -> std::io::Result<()> {
    let mut line = reply.encode();
    line.push('\n');
    conn.write_all(line.as_bytes())?;
    conn.flush()
}

fn handle_connection(shared: Arc<Shared>, mut conn: Conn) {
    let _ = conn.set_read_timeout(Duration::from_millis(shared.config.read_timeout_ms.max(1)));
    let mut reader = LineReader::new(shared.config.max_request_bytes);
    loop {
        match reader.next_line(&mut conn) {
            LineOutcome::Eof => return,
            LineOutcome::Violation(code, detail) => {
                shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let _ = write_reply(&mut conn, &Reply::Error { code, detail });
                return;
            }
            LineOutcome::Line(line) => {
                let reply = match Request::decode(&line) {
                    Ok(request) => handle_request(&shared, request),
                    Err(ServeError::Protocol { code, detail })
                    | Err(ServeError::Remote { code, detail }) => {
                        shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        Reply::Error { code, detail }
                    }
                    Err(e) => {
                        shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        Reply::Error {
                            code: ErrorCode::Malformed,
                            detail: e.to_string(),
                        }
                    }
                };
                if write_reply(&mut conn, &reply).is_err() {
                    return;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Listener + lifecycle
// ---------------------------------------------------------------------------

enum Acceptor {
    Tcp(TcpListener),
    Uds(UnixListener),
}

impl Acceptor {
    fn accept(&self) -> std::io::Result<Conn> {
        match self {
            Acceptor::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
            Acceptor::Uds(l) => l.accept().map(|(s, _)| Conn::Uds(s)),
        }
    }
}

fn listener_loop(shared: Arc<Shared>, acceptor: Acceptor) {
    loop {
        if lock(&shared.core).shutting_down {
            return;
        }
        match acceptor.accept() {
            Ok(conn) => {
                let shared = Arc::clone(&shared);
                thread::spawn(move || handle_connection(shared, conn));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// A running daemon. Dropping the handle does **not** stop it; call
/// [`Server::shutdown`] (or send the `shutdown` op) and then
/// [`Server::join`].
pub struct Server {
    shared: Arc<Shared>,
    listen_addr: Listen,
    listener: Option<thread::JoinHandle<()>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl Server {
    /// Binds the socket, recovers persisted jobs, and starts the
    /// listener and worker shards. Returns once the daemon is
    /// accepting connections.
    ///
    /// # Errors
    ///
    /// Propagates bind and state-directory failures.
    pub fn start(config: ServerConfig) -> Result<Server> {
        let store = JobStore::open(&config.state_dir)?;
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            config,
            core: Mutex::new(Core::default()),
            work: Condvar::new(),
            sessions: Mutex::new(BTreeMap::new()),
            pools: Mutex::new(BTreeMap::new()),
            store,
            requests: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            steps: AtomicU64::new(0),
        });
        recover(&shared)?;

        let (acceptor, listen_addr) = match &shared.config.listen {
            Listen::Tcp(addr) => {
                let listener = TcpListener::bind(addr.as_str())?;
                listener.set_nonblocking(true)?;
                let resolved = listener.local_addr()?.to_string();
                (Acceptor::Tcp(listener), Listen::Tcp(resolved))
            }
            Listen::Uds(path) => {
                if path.exists() {
                    let _ = std::fs::remove_file(path);
                }
                let listener = UnixListener::bind(path)?;
                listener.set_nonblocking(true)?;
                (Acceptor::Uds(listener), Listen::Uds(path.clone()))
            }
        };

        let worker_handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || worker_loop(shared))
            })
            .collect();
        let listener_handle = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || listener_loop(shared, acceptor))
        };
        Ok(Server {
            shared,
            listen_addr,
            listener: Some(listener_handle),
            workers: worker_handles,
        })
    }

    /// The resolved listen address (for `Tcp("…:0")` this carries the
    /// kernel-assigned port).
    pub fn listen_addr(&self) -> &Listen {
        &self.listen_addr
    }

    /// Aggregate counters, equivalent to the `stats` op.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// Initiates a graceful drain: workers finish the phase in flight,
    /// checkpoint, and exit; queued jobs stay persisted for the next
    /// start.
    pub fn shutdown(&self) {
        lock(&self.shared.core).shutting_down = true;
        self.shared.work.notify_all();
    }

    /// Waits for the listener and worker shards to exit (after
    /// [`Server::shutdown`] or a remote `shutdown` op). Connection
    /// handler threads are detached and die with their sockets.
    pub fn join(mut self) {
        if let Some(handle) = self.listener.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        if let Listen::Uds(path) = &self.listen_addr {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Reloads persisted jobs: terminal records are kept for queries,
/// non-terminal ones are re-enqueued to resume from their latest
/// checkpoint. Deadlines re-arm relative to the restart (the original
/// submission instant is deliberately not persisted — wall-clock reads
/// stay confined to `clapped-obs`).
fn recover(shared: &Arc<Shared>) -> Result<()> {
    let records = shared.store.load_jobs()?;
    let mut core = lock(&shared.core);
    for value in records {
        let Ok(mut record) = JobRecord::from_json(&value) else { continue };
        core.next_seq = core.next_seq.max(record.seq + 1);
        if let Some(f) = record.finish_seq {
            core.next_finish = core.next_finish.max(f + 1);
        }
        if !record.state.is_terminal() {
            record.state = JobState::Queued;
            core.queue.push(&record.tenant.clone(), record.id.clone());
        }
        core.jobs.insert(record.id.clone(), record);
    }
    Ok(())
}
