//! End-to-end fault-injection campaign over a synthesized approximate
//! multiplier: rank every stuck-at site at the netlist level, then
//! measure true application-quality degradation for the worst nets.
//!
//! Run with: `cargo run --release --example fault_campaign [-- --jobs N]`
//!
//! `--jobs N` sets the evaluation-engine thread count (default: all
//! cores; results are bit-identical at any setting).

use clapped::axops::{Catalog, Mul8s};
use clapped::core::{Clapped, FaultCampaignConfig};
use clapped::dse::Configuration;
use clapped::exec::{Engine, ExecConfig};
use clapped::netlist::{FaultKind, FaultSet};
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::error::Error;

/// Parses `--jobs N` / `--jobs=N` from the command line (0 = auto).
fn jobs_from_args() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--jobs" {
            return args.next().and_then(|v| v.parse().ok()).unwrap_or(0);
        }
        if let Some(v) = a.strip_prefix("--jobs=") {
            return v.parse().unwrap_or(0);
        }
    }
    0
}

fn main() -> Result<(), Box<dyn Error>> {
    clapped::obs::init_trace_from_args();
    let jobs = jobs_from_args();
    let engine = Engine::new(ExecConfig::with_jobs(jobs));
    println!("evaluation engine: {} worker thread(s)", engine.jobs());

    // 1. Gate-level campaign on the operator's synthesized netlist.
    let catalog = Catalog::standard();
    let approx = catalog.get("mul8s_1KVL").expect("paper alias resolves");
    let netlist = approx.netlist();
    println!(
        "operator {}: {} signals, {} injectable stuck-at sites",
        approx.name(),
        netlist.len(),
        netlist.fault_sites().len()
    );

    let mut rng = ChaCha8Rng::seed_from_u64(0xFA17);
    let batches: Vec<Vec<u64>> = (0..8)
        .map(|_| (0..netlist.inputs().len()).map(|_| rng.next_u64()).collect())
        .collect();
    let report = netlist.stuck_at_campaign_with(&netlist.fault_sites(), &batches, 64, &engine)?;
    println!(
        "netlist pre-screen: {} samples/site, {:.1}% of sites logically masked",
        report.samples,
        100.0 * report.masked_fraction()
    );
    println!("worst nets by positionally weighted output corruption:");
    for site in report.critical_sites(5) {
        let kind = match site.fault.kind {
            FaultKind::StuckAt0 => "SA0",
            FaultKind::StuckAt1 => "SA1",
        };
        println!(
            "  s{:<4} {}  mismatch {:>5.1}%  weighted {:.4}",
            site.fault.signal.index(),
            kind,
            100.0 * site.mismatch_rate,
            site.weighted_error
        );
    }

    // Transient (SEU-style) sensitivity of the same netlist.
    let prop = netlist.transient_campaign(&batches, 4, 0xBEEF)?;
    let live = prop.iter().filter(|&&p| p > 0.0).count();
    println!(
        "transient campaign: {}/{} nets propagate a single bit-flip to an output",
        live,
        prop.len()
    );

    // 2. Cross-layer campaign: lift the worst faults into the denoising
    //    application and measure quality degradation (paper-level view).
    let fw = Clapped::builder()
        .image_size(32)
        .noise_sigma(12.0)
        .exec(ExecConfig::with_jobs(jobs))
        .build()?;
    let mul_index = fw
        .catalog()
        .iter()
        .position(|m| m.name() == approx.name())
        .expect("operator in framework catalog");
    let mut config = Configuration::golden(3);
    config.mul_indices.fill(mul_index);

    let campaign = FaultCampaignConfig { mul_index, top_k: 6, prescreen_batches: 4, seed: 0xC1A9 };
    let app = fw.fault_campaign(&config, &campaign)?;
    println!(
        "\napplication campaign on {} (baseline error {:.3}%):",
        app.operator, app.baseline_error_percent
    );
    println!("  net    kind  netlist-weighted  app-error%  degradation");
    for i in &app.impacts {
        let kind = match i.fault.kind {
            FaultKind::StuckAt0 => "SA0",
            FaultKind::StuckAt1 => "SA1",
        };
        println!(
            "  s{:<5} {}   {:>12.4}  {:>10.3}  {:>+11.3}",
            i.fault.signal.index(),
            kind,
            i.netlist_weighted_error,
            i.app_error_percent,
            i.degradation
        );
    }
    let critical = app.critical(1.0);
    println!(
        "{} of {} promoted sites degrade application quality by >1% — candidates for hardening",
        critical.len(),
        app.impacts.len()
    );

    // 3. Single-fault what-if: stuck-at-1 on the product MSB.
    let msb = netlist.outputs().last().expect("product output").1;
    let faults = FaultSet::empty().stuck_at(msb, FaultKind::StuckAt1);
    let faulted = clapped::axops::FaultedMul::new(&approx, &faults)?;
    println!(
        "\nstuck-at-1 on the product MSB corrupts {} / 65536 table entries",
        faulted.corrupted_entries(approx.as_ref())
    );
    if let Some(report) = clapped::obs::finish() {
        println!("\n{report}");
    }
    Ok(())
}
