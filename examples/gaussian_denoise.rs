//! The paper's motivating experiment (Fig. 1c): accuracy/energy
//! trade-offs of Gaussian image smoothing under cross-layer
//! approximation — accurate (Ac) vs approximate (Ax) multipliers at
//! stride 1 and stride 2.
//!
//! Run with: `cargo run --release --example gaussian_denoise`

use clapped::accel::{characterize, AcceleratorSpec, CharacterizeConfig};
use clapped::axops::Catalog;
use clapped::core::Clapped;
use clapped::dse::Configuration;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    clapped::obs::init_trace_from_args();
    let fw = Clapped::builder()
        .image_size(64)
        .noise_sigma(12.0)
        .seed(21)
        .build()?;
    let catalog: &Catalog = fw.catalog();
    let ac = catalog
        .index_of("mul8s_exact")
        .expect("exact operator present");
    let ax = catalog
        .index_of("mul8s_1KVL")
        .expect("paper alias resolves");

    println!("Fig 1(c): Gaussian smoothing, 3x3 kernel, Ac/Ax x stride 1/2");
    println!("noisy-input PSNR baseline: {:.2} dB", fw.app().noise_psnr());
    println!("{:<8} {:>10} {:>16}", "point", "PSNR (dB)", "energy (uJ/img)");

    let char_cfg = CharacterizeConfig::default();
    for (label, mul_idx, stride) in [
        ("Ac:1", ac, 1usize),
        ("Ac:2", ac, 2),
        ("Ax:1", ax, 1),
        ("Ax:2", ax, 2),
    ] {
        let config = Configuration {
            stride,
            downsample: stride > 1,
            mul_indices: vec![mul_idx; 9],
            ..Configuration::golden(3)
        };
        let quality = fw.evaluate_error(&config)?;
        let spec = AcceleratorSpec {
            stride,
            downsample: stride > 1,
            ..AcceleratorSpec::uniform_2d(64, 3, &catalog.at(mul_idx).expect("valid index"))
        };
        let hw = characterize(&spec, &char_cfg)?;
        println!(
            "{label:<8} {:>10.2} {:>16.3}",
            quality.psnr_db, hw.energy_per_image_uj
        );
    }
    println!();
    println!("Expected shape (paper): Ac:1 has the best PSNR and the most");
    println!("energy; Ax:2 is the most energy-efficient with the lowest PSNR.");
    if let Some(report) = clapped::obs::finish() {
        println!("\n{report}");
    }
    Ok(())
}
