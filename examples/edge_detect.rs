//! Second application: Sobel edge detection under cross-layer
//! approximation — demonstrating the framework's application-agnostic
//! behavioural interface. Writes the edge maps as PGM files.
//!
//! Run with: `cargo run --release --example edge_detect [out_dir]`

use clapped::axops::{Catalog, Mul8s};
use clapped::imgproc::{ConvConfig, Image, SobelEdge, SynthKind};
use std::error::Error;
use std::path::PathBuf;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    clapped::obs::init_trace_from_args();
    let out_dir = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results/edges"));
    std::fs::create_dir_all(&out_dir)?;

    let catalog = Catalog::standard();
    let exact = catalog.get("mul8s_exact").expect("catalog operator");
    let app = SobelEdge::standard(64, exact.clone(), 11);
    let image = Image::synthetic(SynthKind::Blobs, 64, 64, 11);
    image.save_pgm(out_dir.join("input.pgm"))?;

    println!("{:<18} {:>10} {:>10}", "operator", "PSNR (dB)", "err %");
    for name in ["mul8s_exact", "mul8s_tr4", "mul8s_drum4", "mul8s_bam_v6_h2", "mul8s_log"] {
        let m = catalog.get(name).expect("catalog operator");
        let taps: Vec<Arc<dyn Mul8s>> = (0..9).map(|_| m.clone() as _).collect();
        let quality = app.evaluate(&ConvConfig::default(), &taps, &taps)?;
        println!("{name:<18} {:>10.2} {:>10.3}", quality.psnr_db, quality.error_percent);
        let edges = app.edge_map(&image, &ConvConfig::default(), &taps, &taps)?;
        edges.save_pgm(out_dir.join(format!("edges_{name}.pgm")))?;
    }

    // A strided, downsampled configuration for comparison.
    let cheap = ConvConfig {
        stride: 2,
        downsample: true,
        ..ConvConfig::default()
    };
    let taps: Vec<Arc<dyn Mul8s>> = (0..9).map(|_| exact.clone() as _).collect();
    let q = app.evaluate(&cheap, &taps, &taps)?;
    println!("{:<18} {:>10.2} {:>10.3}", "exact, stride 2", q.psnr_db, q.error_percent);

    println!("\nedge maps written to {}", out_dir.display());
    if let Some(report) = clapped::obs::finish() {
        println!("\n{report}");
    }
    Ok(())
}
