//! Runtime-adaptive approximation under a quality SLA: a supervised
//! frame stream that degrades to cheap operators when quality headroom
//! allows, buys accuracy back under burst pressure, and self-heals from
//! a mid-stream hardware fault — then survives a kill/resume through a
//! versioned checkpoint.
//!
//! Run with: `cargo run --release --example sla_stream [-- --trace[=path]]`

use clapped::core::Clapped;
use clapped::netlist::{FaultKind, FaultSet};
use clapped::runtime::{
    FaultPlan, SlaSpec, StreamEvent, StreamOptions, StreamSupervisor,
};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    clapped::obs::init_trace_from_args();

    // The application: Gaussian denoising on 16x16 frames, with the
    // full standard operator catalog as ladder candidates. A 26% error
    // ceiling sits inside the cheapest rung's calm-to-burst spread at
    // this size: dim calm frames clear it, bright bursts overrun it.
    let fw = Clapped::builder().image_size(16).build()?;
    let sla = SlaSpec { max_error_percent: 26.0, max_frame_time_us: 1e9 };
    let base = StreamOptions {
        seed: 0xC1A9,
        headroom_fraction: 0.1,
        hold_frames: 3,
        base_backoff_frames: 2,
        max_backoff_frames: 12,
        audit: true,
        ..StreamOptions::default()
    };
    let frames = 40;
    let fault_frame = 24;

    // Dry-run to the injection point so the fault can target the rung
    // the controller actually occupies there (the watchdog spot-checks
    // only deployed operators).
    let mut dry = fw.sla_supervisor(sla, base.clone())?;
    let ladder = dry.ladder().clone();
    println!("ladder ({} rungs, ceiling {:.1}% error):", ladder.len(), sla.max_error_percent);
    for (i, r) in ladder.rungs().iter().enumerate() {
        println!(
            "  rung {i}: {:<18} calm {:>6.2}%  burst {:>6.2}%  {:.3} uJ/frame",
            r.name, r.calm_error_percent, r.burst_error_percent, r.energy_per_image_uj
        );
    }
    dry.run(fault_frame)?;
    let fault_rung = dry.rung();
    let msb = ladder.rungs()[fault_rung]
        .op
        .netlist()
        .outputs()
        .last()
        .expect("product MSB")
        .1;
    let options = StreamOptions {
        fault: Some(FaultPlan {
            frame: fault_frame,
            tap: ladder.conv_config().taps() / 2,
            faults: FaultSet::empty().stuck_at(msb, FaultKind::StuckAt1),
        }),
        ..base
    };

    // Supervised stream with a kill/resume in the middle: checkpoint
    // after the fault lands, drop the supervisor, restore from JSON.
    let mut sup = StreamSupervisor::new(ladder.clone(), sla, options.clone())?;
    sup.run(fault_frame + 4)?;
    let snapshot = sup.checkpoint();
    drop(sup);
    println!("\ncheckpointed at frame {} ({} bytes of JSON); resuming…", fault_frame + 4, snapshot.len());
    let mut sup = StreamSupervisor::resume(ladder, sla, options, &snapshot)?;
    let report = sup.run(frames)?;

    println!("\nreconfiguration log:");
    for event in &report.events {
        match event {
            StreamEvent::Swap { frame, from_rung, to_rung, reason } => {
                println!("  frame {frame:>3}: swap rung {from_rung} -> {to_rung} ({})", reason.name());
            }
            StreamEvent::FaultDetected { frame, tap, rung, latency_frames } => {
                println!("  frame {frame:>3}: fault detected on rung {rung} tap {tap} ({latency_frames}-frame latency)");
            }
            StreamEvent::Quarantine { frame, rung } => {
                println!("  frame {frame:>3}: rung {rung} quarantined");
            }
            StreamEvent::HwDivergence { frame, rung } => {
                println!("  frame {frame:>3}: hardware model divergence on rung {rung}");
            }
        }
    }
    let latency = report
        .detection_latency_frames
        .expect("the watchdog catches an MSB stuck-at fault");
    println!(
        "\n{} frames: {} swaps, {} estimated / {} audited SLA violations, \
         fault detected in {} frame(s), {:.2} uJ total, output digest {:016x}",
        report.frames,
        report.swaps,
        report.violations,
        report.true_violations,
        latency,
        report.energy_uj,
        report.output_digest
    );

    if let Some(report) = clapped::obs::finish() {
        println!("\n{report}");
    }
    Ok(())
}
