//! Quickstart: characterize an approximate multiplier, smooth a noisy
//! image with it, and price the corresponding FPGA accelerator.
//!
//! Run with: `cargo run --release --example quickstart`

use clapped::accel::{characterize, AcceleratorSpec, CharacterizeConfig};
use clapped::axops::{Catalog, Mul8s};
use clapped::errmodel::{ErrorStats, PrModel};
use clapped::imgproc::{psnr, ConvConfig, ConvEngine, Image, QuantKernel, SynthKind};
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    clapped::obs::init_trace_from_args();
    // 1. Pick operators from the library.
    let catalog = Catalog::standard();
    let exact = catalog.get("mul8s_exact").expect("catalog operator");
    let approx = catalog.get("mul8s_1KVL").expect("paper alias resolves");
    println!("operator: {} ({})", approx.name(), approx.arch().describe());

    // 2. Application-independent characterization (paper Section II-A).
    let stats = ErrorStats::of_multiplier(approx.as_ref());
    println!(
        "  MAE {:.2}  avg-rel {:.4}  err-prob {:.3}  peaks [{}, {}]",
        stats.mae, stats.mean_relative, stats.error_probability,
        stats.peak_negative, stats.peak_positive
    );
    let pr = PrModel::fit(approx.as_ref(), 3);
    println!("  degree-3 PR model: R^2 = {:.6}", pr.r2());

    // 3. Run the application with cross-layer approximations.
    let clean = Image::synthetic(SynthKind::SmoothField, 64, 64, 7);
    let noisy = clean.with_gaussian_noise(12.0, 3);
    let engine = ConvEngine::new(QuantKernel::gaussian(3, 0.85));
    let config = ConvConfig::default();
    let taps_exact: Vec<Arc<dyn Mul8s>> = (0..9).map(|_| exact.clone() as _).collect();
    let taps_approx: Vec<Arc<dyn Mul8s>> = (0..9).map(|_| approx.clone() as _).collect();
    let out_exact = engine.convolve(&noisy, &config, &taps_exact)?;
    let out_approx = engine.convolve(&noisy, &config, &taps_approx)?;
    println!("noisy input PSNR       : {:.2} dB", psnr(&clean, &noisy));
    println!("exact smoothing PSNR   : {:.2} dB", psnr(&clean, &out_exact));
    println!("approx smoothing PSNR  : {:.2} dB", psnr(&clean, &out_approx));

    // 4. Price the hardware (paper Section III).
    let cfg = CharacterizeConfig::default();
    for (label, m) in [("exact", &exact), ("approx", &approx)] {
        let spec = AcceleratorSpec::uniform_2d(64, 3, m);
        let r = characterize(&spec, &cfg)?;
        println!(
            "{label:>6} accelerator: {:4} LUTs, {:.2} ns CPD, {:.1} mW, {:.2} uJ/image",
            r.luts, r.cpd_ns, r.total_power_mw, r.energy_per_image_uj
        );
    }
    if let Some(report) = clapped::obs::finish() {
        println!("\n{report}");
    }
    Ok(())
}
