//! DSE-as-a-service in one process: start a `clapped-serve` server on a
//! loopback port, submit two jobs with different quality constraints
//! for two tenants, stream their progress, and print both Pareto
//! fronts. The tighter constraint yields a front whose feasible set is
//! a strict refinement of the looser one — same search, different
//! tenant contract.
//!
//! Run with: `cargo run --release --example serve_session [-- --trace[=path]]`

use clapped::obs::Deadline;
use clapped::serve::{Client, JobSpec, JobState, Listen, Server, ServerConfig};
use std::error::Error;
use std::time::Duration;

fn main() -> Result<(), Box<dyn Error>> {
    clapped::obs::init_trace_from_args();

    // An in-process daemon: loopback TCP, fresh state directory, two
    // worker shards. The same binary workflow works over `--uds` with
    // the standalone `clapped_serve` daemon.
    let root = std::env::temp_dir().join(format!("serve_session_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mut config = ServerConfig::new(Listen::Tcp("127.0.0.1:0".to_string()), root.join("state"));
    config.cache_dir = Some(root.join("cache"));
    let server = Server::start(config)?;
    println!("serving on {:?}", server.listen_addr());

    // Two tenants, same application recipe, different quality
    // constraints: "edge" tolerates 15% application error, "studio"
    // demands 6%. The recipes match, so both jobs share one pooled
    // framework instance and its result cache.
    let base = JobSpec {
        image_size: 16,
        mbo: clapped::dse::MboConfig {
            initial_samples: 8,
            iterations: 3,
            batch: 3,
            candidates: 12,
            reference: vec![40.0, 5000.0],
            kappa: 1.0,
            explore_fraction: 0.1,
            seed: 11,
        },
        ..JobSpec::default()
    };
    let mut client = Client::connect(server.listen_addr())?;
    let relaxed = client.submit(
        "edge",
        JobSpec { max_error_percent: Some(15.0), ..base.clone() },
    )?;
    let strict = client.submit(
        "studio",
        JobSpec {
            max_error_percent: Some(6.0),
            mbo: clapped::dse::MboConfig { seed: 12, ..base.mbo },
            ..base
        },
    )?;
    println!("submitted {relaxed} (error <= 15%) and {strict} (error <= 6%)");

    // Stream progress until both campaigns complete.
    let limit = Deadline::after(Duration::from_secs(600));
    let mut last = (u64::MAX, u64::MAX);
    loop {
        let a = client.status(&relaxed)?;
        let b = client.status(&strict)?;
        if (a.evaluations_done, b.evaluations_done) != last {
            last = (a.evaluations_done, b.evaluations_done);
            println!(
                "  {relaxed}: {}/{} evals (hv {:.0})   {strict}: {}/{} evals (hv {:.0})",
                a.evaluations_done, a.evaluations_planned, a.hypervolume,
                b.evaluations_done, b.evaluations_planned, b.hypervolume,
            );
        }
        if a.state.is_terminal() && b.state.is_terminal() {
            assert_eq!(a.state, JobState::Done, "{:?}", a.error);
            assert_eq!(b.state, JobState::Done, "{:?}", b.error);
            break;
        }
        if limit.expired() {
            return Err("jobs did not finish in time".into());
        }
        std::thread::sleep(Duration::from_millis(40));
    }

    for (job, label) in [(&relaxed, "error <= 15%"), (&strict, "error <= 6%")] {
        let (_, pareto) = client.result(job)?;
        println!("\nPareto front of {job} ({label}):");
        println!("  {:>10} {:>10}  feasible", "error %", "LUTs");
        for entry in &pareto {
            println!(
                "  {:>10.3} {:>10.0}  {}",
                entry.error_percent,
                entry.luts,
                if entry.feasible { "yes" } else { "no" },
            );
        }
        let feasible = pareto.iter().filter(|e| e.feasible).count();
        println!("  {} points, {} feasible under {label}", pareto.len(), feasible);
    }

    let stats = client.stats()?;
    println!(
        "\nserver: {} jobs done, {} MBO phases, cache hits {} / misses {}",
        stats.jobs_done, stats.steps, stats.cache.hits, stats.cache.misses,
    );

    client.shutdown()?;
    server.join();
    let _ = std::fs::remove_dir_all(&root);
    clapped::obs::finish();
    Ok(())
}
