//! Export library operators and a full accelerator datapath as
//! structural Verilog — both gate-level and LUT-level after technology
//! mapping — so designs leave the framework into a real FPGA flow.
//!
//! Run with: `cargo run --release --example export_verilog [out_dir]`

use clapped::accel::{build_datapath, AcceleratorSpec};
use clapped::axops::Catalog;
use clapped::netlist::verilog::{mapped_to_verilog, to_verilog};
use clapped::netlist::{map_luts, optimize, MapStrategy};
use std::error::Error;
use std::fs;
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn Error>> {
    clapped::obs::init_trace_from_args();
    let out_dir = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results/verilog"));
    fs::create_dir_all(&out_dir)?;
    let catalog = Catalog::standard();

    // 1. One approximate multiplier, gate- and LUT-level.
    let m = catalog.get("mul8s_drum4").expect("catalog operator");
    let gate_v = to_verilog(m.netlist());
    fs::write(out_dir.join("mul8s_drum4_gates.v"), &gate_v)?;
    let opt = optimize(m.netlist());
    let mapped = map_luts(&opt, 6, MapStrategy::Depth)?;
    let lut_v = mapped_to_verilog(&mapped, "mul8s_drum4_lut6");
    fs::write(out_dir.join("mul8s_drum4_lut6.v"), &lut_v)?;
    println!(
        "mul8s_drum4: {} gates -> {} LUT6 ({} lines of Verilog)",
        opt.logic_gate_count(),
        mapped.lut_count(),
        lut_v.lines().count()
    );

    // 2. A full 3x3 accelerator datapath.
    let spec = AcceleratorSpec::uniform_2d(64, 3, &catalog.get("mul8s_tr3").expect("operator"));
    let datapath = build_datapath(&spec, 8)?;
    let dp_opt = optimize(&datapath);
    fs::write(out_dir.join("accel_3x3_gates.v"), to_verilog(&dp_opt))?;
    let dp_mapped = map_luts(&dp_opt, 6, MapStrategy::Depth)?;
    fs::write(
        out_dir.join("accel_3x3_lut6.v"),
        mapped_to_verilog(&dp_mapped, "accel_3x3_lut6"),
    )?;
    println!(
        "3x3 accelerator PE: {} gates -> {} LUT6, depth {}",
        dp_opt.logic_gate_count(),
        dp_mapped.lut_count(),
        dp_mapped.depth
    );
    println!("Verilog written to {}", out_dir.display());
    if let Some(report) = clapped::obs::finish() {
        println!("\n{report}");
    }
    Ok(())
}
