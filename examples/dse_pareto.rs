//! End-to-end cross-layer DSE (paper Fig. 12): multi-objective Bayesian
//! optimization over application error and LUT utilization, compared to
//! random search, with Pareto-set DoF analysis and actual re-evaluation.
//!
//! Run with: `cargo run --release --example dse_pareto [-- --jobs N]`
//!
//! `--jobs N` sets the evaluation-engine thread count (default: all
//! cores; results are bit-identical at any setting).

use clapped::core::{explore, Clapped, EstimationMode, ExecConfig, ExploreOptions, MulRepr};
use clapped::dse::{random_search, MboConfig};
use std::error::Error;

/// Parses `--jobs N` / `--jobs=N` from the command line (0 = auto).
fn jobs_from_args() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--jobs" {
            return args.next().and_then(|v| v.parse().ok()).unwrap_or(0);
        }
        if let Some(v) = a.strip_prefix("--jobs=") {
            return v.parse().unwrap_or(0);
        }
    }
    0
}

fn main() -> Result<(), Box<dyn Error>> {
    clapped::obs::init_trace_from_args();
    let fw = Clapped::builder()
        .image_size(32)
        .noise_sigma(12.0)
        .seed(5)
        .exec(ExecConfig::with_jobs(jobs_from_args()))
        .build()?;
    println!("evaluation engine: {} worker thread(s)", fw.engine().jobs());

    let mbo_cfg = MboConfig {
        initial_samples: 20,
        iterations: 6,
        batch: 10,
        candidates: 50,
        reference: vec![30.0, 4000.0],
        kappa: 1.0,
        explore_fraction: 0.1,
        seed: 11,
    };
    let opts = ExploreOptions {
        error_mode: EstimationMode::Ml,
        hw_mode: EstimationMode::Ml,
        repr: MulRepr::Coeffs(4),
        training_samples: 120,
        mbo: mbo_cfg.clone(),
        actual_eval: true,
        ..ExploreOptions::default()
    };

    println!("training surrogate-input MLPs and running MBO ...");
    let result = explore(&fw, &opts)?;

    // Baseline with the same budget, same true objective definition.
    println!("running random search with the same budget ...");
    let space = fw.space().clone();
    let rnd = random_search(
        &mbo_cfg,
        move |rng| space.sample(rng),
        |c| {
            let err = fw.evaluate_error(c).map(|r| r.error_percent).unwrap_or(1e9);
            let luts = fw.characterize_hw(c).map(|r| r.luts as f64).unwrap_or(1e9);
            vec![err, luts]
        },
    )?;

    println!("\nhypervolume progress (error% x LUTs):");
    println!("{:>8} {:>14} {:>14}", "#evals", "MBO", "RANDOM");
    for (m, r) in result.search.hv_trace.iter().zip(&rnd.hv_trace) {
        println!("{:>8} {:>14.0} {:>14.0}", m.0, m.1, r.1);
    }

    println!("\nPareto points (searched vs actual):");
    println!(
        "{:>4} {:>7} {:>3} {:>5} {:>6} {:>10} {:>8} {:>10} {:>8}",
        "#", "stride", "ds", "scale", "mode", "err%(ML)", "LUTs(ML)", "err%(act)", "LUTs(act)"
    );
    for (i, p) in result.pareto.iter().enumerate() {
        let c = &p.config;
        let actual = p.actual.unwrap_or([f64::NAN, f64::NAN]);
        println!(
            "{:>4} {:>7} {:>3} {:>5} {:>6?} {:>10.2} {:>8.0} {:>10.2} {:>8.0}",
            i, c.stride, u8::from(c.downsample), c.scale, c.mode,
            p.searched[0], p.searched[1], actual[0], actual[1]
        );
    }

    let s = result.dof_summary();
    println!("\nDoF diversity over {} Pareto points:", s.total);
    println!("  uniform multiplier assignment : {}", s.uniform_multiplier);
    println!("  stride > 1                    : {}", s.strided);
    println!("  downsampling enabled          : {}", s.downsampled);
    println!("  scale 1 / 2 / 3+              : {} / {} / {}", s.scale1, s.scale2, s.scale3plus);
    println!("\nAs in the paper, most Pareto points mix multiplier types and");
    println!("several non-default DoF settings appear — cross-layer search pays.");

    let cache = fw.cache_stats();
    let tables = clapped::axops::table_cache_stats();
    println!(
        "\nexecution: {} jobs over {} batches; result cache {} hit / {} miss; \
         behavioural tables built {} (reused {})",
        fw.engine().jobs_executed(),
        fw.engine().batches_executed(),
        cache.hits,
        cache.misses,
        tables.misses,
        tables.hits
    );
    if let Some(report) = clapped::obs::finish() {
        println!("\n{report}");
    }
    Ok(())
}
