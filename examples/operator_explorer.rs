//! Operator-library explorer: characterize every multiplier in the
//! catalog with statistical metrics, distribution fitting, the
//! curve-fitting baseline and polynomial-regression models.
//!
//! Run with: `cargo run --release --example operator_explorer [-- --jobs N]`
//!
//! `--jobs N` sets the characterization thread count (default: all
//! cores; the table is identical at any setting).

use clapped::axops::{Catalog, Mul8s};
use clapped::errmodel::curvefit::{best_curve_fits, LmConfig};
use clapped::errmodel::dist::rank_distributions;
use clapped::errmodel::{error_samples, ErrorStats, PrModel};
use clapped::exec::{Engine, ExecConfig};
use std::error::Error;

/// Parses `--jobs N` / `--jobs=N` from the command line (0 = auto).
fn jobs_from_args() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--jobs" {
            return args.next().and_then(|v| v.parse().ok()).unwrap_or(0);
        }
        if let Some(v) = a.strip_prefix("--jobs=") {
            return v.parse().unwrap_or(0);
        }
    }
    0
}

fn main() -> Result<(), Box<dyn Error>> {
    clapped::obs::init_trace_from_args();
    let catalog = Catalog::standard();
    let engine = Engine::new(ExecConfig::with_jobs(jobs_from_args()));
    println!("characterizing {} operators on {} thread(s)", catalog.len(), engine.jobs());
    println!(
        "{:<18} {:>9} {:>9} {:>7} {:>8} {:>10} {:>9} {:>9}",
        "operator", "MAE", "avg-rel", "e-prob", "R2(PR3)", "PR-estMAE", "CF-estMAE", "bestDist"
    );
    // Each operator's characterization is independent: fan the whole
    // catalog over the engine and print the rows in catalog order.
    let operators: Vec<_> = catalog.iter().collect();
    let rows = engine.try_evaluate_many(&operators, |_, m| {
        let stats = ErrorStats::of_multiplier(m.as_ref());
        let pr = PrModel::fit(m.as_ref(), 3);
        let pr_mae = pr.estimation_mae(m.as_ref());
        // Curve-fitting baseline: best of the top-2 K-S-ranked families.
        let fits = best_curve_fits(m.as_ref(), 2, &LmConfig::default())?;
        let cf_mae = fits
            .first()
            .map(|f| f.estimation_mae(m.as_ref()))
            .unwrap_or(f64::NAN);
        let best_dist = if stats.error_probability > 0.0 {
            rank_distributions(&error_samples(m.as_ref()))[0].0.kind().name()
        } else {
            "-"
        };
        Ok::<String, clapped::errmodel::FitError>(format!(
            "{:<18} {:>9.2} {:>9.4} {:>7.3} {:>8.4} {:>10.2} {:>9.2} {:>9}",
            m.name(),
            stats.mae,
            stats.mean_relative,
            stats.error_probability,
            pr.r2(),
            pr_mae,
            cf_mae,
            best_dist
        ))
    })?;
    for row in rows {
        println!("{row}");
    }
    println!();
    println!("PR-estMAE below CF-estMAE across the catalog reproduces the");
    println!("paper's Section II finding that PR models track approximate");
    println!("operators far better than distribution-based curve fitting.");
    if let Some(report) = clapped::obs::finish() {
        println!("\n{report}");
    }
    Ok(())
}
