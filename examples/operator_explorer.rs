//! Operator-library explorer: characterize every multiplier in the
//! catalog with statistical metrics, distribution fitting, the
//! curve-fitting baseline and polynomial-regression models.
//!
//! Run with: `cargo run --release --example operator_explorer`

use clapped::axops::{Catalog, Mul8s};
use clapped::errmodel::curvefit::{best_curve_fits, LmConfig};
use clapped::errmodel::dist::rank_distributions;
use clapped::errmodel::{error_samples, ErrorStats, PrModel};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let catalog = Catalog::standard();
    println!(
        "{:<18} {:>9} {:>9} {:>7} {:>8} {:>10} {:>9} {:>9}",
        "operator", "MAE", "avg-rel", "e-prob", "R2(PR3)", "PR-estMAE", "CF-estMAE", "bestDist"
    );
    for m in catalog.iter() {
        let stats = ErrorStats::of_multiplier(m.as_ref());
        let pr = PrModel::fit(m.as_ref(), 3);
        let pr_mae = pr.estimation_mae(m.as_ref());
        // Curve-fitting baseline: best of the top-2 K-S-ranked families.
        let fits = best_curve_fits(m.as_ref(), 2, &LmConfig::default())?;
        let cf_mae = fits
            .first()
            .map(|f| f.estimation_mae(m.as_ref()))
            .unwrap_or(f64::NAN);
        let best_dist = if stats.error_probability > 0.0 {
            rank_distributions(&error_samples(m.as_ref()))[0].0.kind().name()
        } else {
            "-"
        };
        println!(
            "{:<18} {:>9.2} {:>9.4} {:>7.3} {:>8.4} {:>10.2} {:>9.2} {:>9}",
            m.name(),
            stats.mae,
            stats.mean_relative,
            stats.error_probability,
            pr.r2(),
            pr_mae,
            cf_mae,
            best_dist
        );
    }
    println!();
    println!("PR-estMAE below CF-estMAE across the catalog reproduces the");
    println!("paper's Section II finding that PR models track approximate");
    println!("operators far better than distribution-based curve fitting.");
    Ok(())
}
