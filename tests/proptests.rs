//! Cross-crate property-based tests (proptest): invariants that must
//! hold for arbitrary inputs across the operator, netlist, image and
//! DSE layers.

use clapped::axops::{AxMul, Mul8s, MulArch};
use clapped::dse::{dominates, hypervolume, pareto_front, Configuration, DesignSpace};
use clapped::imgproc::{app_error_percent, psnr, Image};
use clapped::la::Mat;
use clapped::netlist::{bus, optimize, Netlist};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Behavioural tables and gate-level netlists agree for every
    /// architecture and input pair (spot-checking archs per case).
    #[test]
    fn operator_table_matches_netlist(a: i8, b: i8, k in 1usize..=5) {
        let m = AxMul::new("p", MulArch::Truncated { k });
        let sim = m
            .netlist()
            .simulate_binary_op(8, 8, &[(i64::from(a), i64::from(b))], true)
            .expect("simulates");
        prop_assert_eq!(sim[0] as i16, m.mul(a, b));
    }

    /// The exact multiplier architecture is exact for arbitrary inputs.
    #[test]
    fn exact_arch_is_exact(a: i8, b: i8) {
        let m = AxMul::new("e", MulArch::Exact);
        prop_assert_eq!(m.mul(a, b), i16::from(a) * i16::from(b));
    }

    /// Ripple-carry addition in the netlist IR matches machine addition
    /// for arbitrary widths and operands.
    #[test]
    fn rca_matches_machine_add(a in 0u32..(1 << 12), b in 0u32..(1 << 12)) {
        let mut n = Netlist::new("add");
        let xa = n.input_bus("a", 12);
        let xb = n.input_bus("b", 12);
        let (s, c) = bus::ripple_carry_add(&mut n, &xa, &xb, None);
        n.output_bus("s", &s);
        n.output("c", c);
        let out = n
            .simulate_binary_op(12, 12, &[(i64::from(a), i64::from(b))], false)
            .expect("simulates");
        prop_assert_eq!(out[0] as u32, a + b);
    }

    /// Optimization preserves function on random mux/xor networks.
    #[test]
    fn optimize_preserves_function(ops in proptest::collection::vec(0u8..5, 1..40), input_word: u64) {
        let mut n = Netlist::new("rand");
        let mut sigs = vec![n.input("a"), n.input("b"), n.input("c")];
        for (i, op) in ops.iter().enumerate() {
            let x = sigs[i % sigs.len()];
            let y = sigs[(i * 7 + 1) % sigs.len()];
            let z = sigs[(i * 13 + 2) % sigs.len()];
            let s = match op {
                0 => n.and(x, y),
                1 => n.xor(x, y),
                2 => n.mux(x, y, z),
                3 => n.not(x),
                _ => n.maj(x, y, z),
            };
            sigs.push(s);
        }
        let out = *sigs.last().expect("non-empty");
        n.output("y", out);
        let opt = optimize(&n);
        let words = [input_word, input_word.rotate_left(17), input_word.rotate_left(41)];
        prop_assert_eq!(
            n.simulate_words(&words).expect("simulates"),
            opt.simulate_words(&words).expect("simulates")
        );
    }

    /// PSNR is symmetric and app-error is bounded by 100 %.
    #[test]
    fn image_metrics_invariants(seed_a: u64, seed_b: u64) {
        let a = Image::synthetic(clapped::imgproc::SynthKind::SmoothField, 8, 8, seed_a);
        let b = Image::synthetic(clapped::imgproc::SynthKind::SmoothField, 8, 8, seed_b);
        prop_assert!((psnr(&a, &b) - psnr(&b, &a)).abs() < 1e-9);
        let e = app_error_percent(&a, &b);
        prop_assert!((0.0..=100.0).contains(&e));
    }

    /// Pareto front members never dominate each other, and every
    /// non-member is dominated by some member.
    #[test]
    fn pareto_front_is_sound_and_complete(
        points in proptest::collection::vec(
            proptest::collection::vec(0.0f64..10.0, 2), 1..30)
    ) {
        let front = pareto_front(&points);
        for &i in &front {
            for &j in &front {
                prop_assert!(!dominates(&points[i], &points[j]));
            }
        }
        for i in 0..points.len() {
            if !front.contains(&i) {
                prop_assert!(front.iter().any(|&j| dominates(&points[j], &points[i])));
            }
        }
    }

    /// Hypervolume is monotone under point addition and bounded by the
    /// reference box.
    #[test]
    fn hypervolume_monotone_and_bounded(
        points in proptest::collection::vec(
            proptest::collection::vec(0.0f64..1.0, 2), 1..20),
        extra in proptest::collection::vec(0.0f64..1.0, 2)
    ) {
        let reference = [1.0, 1.0];
        let hv = hypervolume(&points, &reference);
        prop_assert!(hv <= 1.0 + 1e-12);
        let mut more = points.clone();
        more.push(extra);
        prop_assert!(hypervolume(&more, &reference) >= hv - 1e-12);
    }

    /// Design-space samples always decode to valid convolution configs
    /// whose tap requirement matches the active multiplier count.
    #[test]
    fn sampled_configurations_are_consistent(seed: u64) {
        use rand::SeedableRng;
        let space = DesignSpace::paper_default(7);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let c: Configuration = space.sample(&mut rng);
        prop_assert!(space.contains(&c));
        prop_assert_eq!(c.conv_config().taps(), c.active_mul_indices().len());
    }

    /// Least squares via QR reproduces matrix-vector products exactly on
    /// consistent systems.
    #[test]
    fn qr_solves_consistent_systems(
        coeffs in proptest::collection::vec(-5.0f64..5.0, 3)
    ) {
        let a = Mat::from_fn(6, 3, |i, j| ((i * 3 + j * 7) % 11) as f64 - 5.0 + if i == j { 10.0 } else { 0.0 });
        let b = a.matvec(&coeffs).expect("dims");
        let x = a.lstsq(&b).expect("solvable");
        for (got, want) in x.iter().zip(&coeffs) {
            prop_assert!((got - want).abs() < 1e-6, "{} vs {}", got, want);
        }
    }
}
