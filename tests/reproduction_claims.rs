//! Shape-level assertions of the paper's headline claims, at reduced
//! scale so they run inside the test suite. The full-size numbers live
//! in the `fig*` harnesses and EXPERIMENTS.md; these tests pin the
//! *direction* of every claim.

use clapped::axops::{Catalog, Mul8s};
use clapped::errmodel::curvefit::{best_curve_fits, LmConfig};
use clapped::errmodel::{rank_terms, ErrorStats, PrModel};
use clapped::dse::{mbo, random_search, MboConfig};
use rand::Rng;

/// Section II: PR models estimate approximate multipliers better than
/// distribution-based curve fitting.
#[test]
fn pr_beats_curve_fitting_on_multipliers() {
    let catalog = Catalog::standard();
    for alias in ["mul8s_1KR3", "mul8s_1KVA", "mul8s_1L2D"] {
        let m = catalog.get(alias).expect("alias resolves");
        let pr_mae = PrModel::fit(m.as_ref(), 3).estimation_mae(m.as_ref());
        let cf = best_curve_fits(m.as_ref(), 1, &LmConfig::default()).expect("fit");
        let cf_mae = cf[0].estimation_mae(m.as_ref());
        assert!(
            pr_mae < cf_mae,
            "{alias}: PR {pr_mae} must beat curve fit {cf_mae}"
        );
    }
}

/// Section V-B: degree-3 PR models achieve near-unity R².
#[test]
fn degree3_pr_models_fit_the_whole_catalog() {
    let catalog = Catalog::standard();
    for m in catalog.iter() {
        let r2 = PrModel::fit(m.as_ref(), 3).r2();
        assert!(r2 > 0.97, "{}: R2 {r2}", m.name());
    }
}

/// Fig. 7: very small retrained coefficient subsets behave like an
/// accurate multiplier; enough coefficients recover the operator.
#[test]
fn coefficient_subsets_transition_from_exact_like_to_operator_like() {
    let catalog = Catalog::standard();
    let m = catalog.get("mul8s_1KR3").expect("alias resolves");
    let actual = ErrorStats::of_multiplier(m.as_ref()).mean_relative;
    let full = PrModel::fit(m.as_ref(), 3);
    let ranking = rank_terms(&[&full]);
    let rel_of = |pr: &PrModel| {
        ErrorStats::from_fns(
            |a, b| i32::from(pr.predict_i16(a, b)),
            |a, b| i32::from(a) * i32::from(b),
        )
        .mean_relative
    };
    let c2 = rel_of(&full.refit_top(m.as_ref(), &ranking, 2).expect("refit"));
    let c6 = rel_of(&full.refit_top(m.as_ref(), &ranking, 6).expect("refit"));
    // C2 misses most of the operator's error; C6 captures it.
    assert!(c2 < actual * 0.5, "C2 ({c2}) should look accurate vs actual {actual}");
    assert!(
        (c6 - actual).abs() / actual < 0.25,
        "C6 ({c6}) should approach the actual value {actual}"
    );
}

/// Fig. 12a (toy-scale): MBO finds at least the hypervolume of random
/// search on a deceptive bi-objective problem at the same budget.
#[test]
fn mbo_matches_or_beats_random_search() {
    let config = MboConfig {
        initial_samples: 20,
        iterations: 8,
        batch: 5,
        candidates: 40,
        reference: vec![1.5, 1.5],
        kappa: 1.0,
        explore_fraction: 0.1,
        seed: 6,
    };
    let objective = |x: &Vec<f64>| -> Vec<f64> {
        // A narrow valley: both objectives small only when the genes agree.
        let err = (x[0] - x[1]).abs() + 0.1 * x[0];
        let cost = 1.0 - x[0] * x[1] * 0.9;
        vec![err, cost]
    };
    let sample = |rng: &mut rand_chacha::ChaCha8Rng| -> Vec<f64> {
        vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]
    };
    let m = mbo(&config, sample, |x| x.clone(), objective).expect("mbo");
    let r = random_search(&config, sample, objective).expect("random");
    assert!(
        m.final_hypervolume() >= r.final_hypervolume() * 0.98,
        "MBO {} vs random {}",
        m.final_hypervolume(),
        r.final_hypervolume()
    );
}

/// Fig. 11 precondition: operator hardware cost correlates with
/// accuracy class — approximations buy LUTs.
#[test]
fn approximations_buy_hardware() {
    use clapped::netlist::{synthesize, SynthConfig};
    let catalog = Catalog::standard();
    let luts = |name: &str| -> usize {
        let m = catalog.get(name).expect("present");
        synthesize(m.netlist(), &SynthConfig::default())
            .expect("flow")
            .lut_count
    };
    let exact = luts("mul8s_exact");
    for cheap in ["mul8s_tr2", "mul8s_tr4", "mul8s_tr6", "mul8s_bam_v4_h1", "mul8s_bam_v6_h2"] {
        let l = luts(cheap);
        assert!(l <= exact, "{cheap}: {l} LUTs vs exact {exact}");
    }
    // Dynamic-range and LOA multipliers pay structural overhead (LODs,
    // shifters, dense carry-save rows) at 8 bits — a genuine effect the
    // cross-layer DSE has to weigh, not a bug.
    assert!(luts("mul8s_drum3") > 0);
}
