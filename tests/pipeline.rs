//! End-to-end integration tests: the full CLAppED pipeline from
//! operator library through behavioural analysis, hardware
//! characterization and DSE.

use clapped::axops::{Catalog, Mul8s};
use clapped::core::{explore, Clapped, EstimationMode, ExploreOptions, MulRepr};
use clapped::dse::{Configuration, MboConfig};
use clapped::mlp::TrainConfig;

fn small_framework() -> Clapped {
    Clapped::builder()
        .image_size(16)
        .noise_sigma(12.0)
        .seed(3)
        .build()
        .expect("framework builds")
}

#[test]
fn framework_stages_cohere() {
    let fw = small_framework();
    // Stage 1: behavioural error analysis.
    let golden = Configuration::golden(3);
    assert_eq!(fw.evaluate_error(&golden).expect("evaluates").error_percent, 0.0);
    let mut approx = golden.clone();
    let rough = fw.catalog().index_of("mul8s_bam_v8_h3").expect("in catalog");
    approx.mul_indices = vec![rough; 9];
    let r = fw.evaluate_error(&approx).expect("evaluates");
    assert!(r.error_percent > 0.5, "rough multipliers must show up");

    // Stage 2: accelerator estimation orders designs sensibly.
    let hw_exact = fw.characterize_hw(&golden).expect("synthesis");
    let hw_approx = fw.characterize_hw(&approx).expect("synthesis");
    assert!(hw_approx.luts < hw_exact.luts);
    assert!(hw_approx.energy_per_image_uj < hw_exact.energy_per_image_uj);

    // Stage 3: DSE over both objectives (true mode, tiny budget).
    let opts = ExploreOptions {
        error_mode: EstimationMode::True,
        hw_mode: EstimationMode::True,
        training_samples: 0,
        mbo: MboConfig {
            initial_samples: 6,
            iterations: 1,
            batch: 3,
            candidates: 8,
            reference: vec![40.0, 5000.0],
            kappa: 1.0,
            explore_fraction: 0.1,
            seed: 1,
        },
        actual_eval: false,
        ..ExploreOptions::default()
    };
    let result = explore(&fw, &opts).expect("exploration");
    assert_eq!(result.search.evaluated.len(), 9);
    assert!(!result.pareto.is_empty());
}

#[test]
fn ml_estimation_roundtrip() {
    let fw = small_framework();
    let (_, xs, ys) = fw
        .make_error_dataset(60, MulRepr::Coeffs(4), 7)
        .expect("dataset");
    let model = fw
        .train_error_model(
            &xs,
            &ys,
            &TrainConfig {
                epochs: 60,
                ..TrainConfig::default()
            },
        )
        .expect("training");
    // The model must at least rank the golden config below a rough one.
    let golden = Configuration::golden(3);
    let rough_idx = fw.catalog().index_of("mul8s_bam_v8_h3").expect("in catalog");
    let mut rough = golden.clone();
    rough.mul_indices = vec![rough_idx; 9];
    rough.scale = 3;
    let p_golden = model.predict(&fw.encode(&golden, MulRepr::Coeffs(4)));
    let p_rough = model.predict(&fw.encode(&rough, MulRepr::Coeffs(4)));
    assert!(
        p_rough > p_golden,
        "predicted {p_rough} for rough vs {p_golden} for golden"
    );
}

#[test]
fn paper_alias_operators_cover_the_accuracy_spectrum() {
    let catalog = Catalog::standard();
    let mae = |name: &str| -> f64 {
        let m = catalog.get(name).expect("alias resolves");
        clapped::errmodel::ErrorStats::of_multiplier(m.as_ref()).mae
    };
    let kva = mae("mul8s_1KVA");
    let kvl = mae("mul8s_1KVL");
    let kr3 = mae("mul8s_1KR3");
    assert!(kva < kvl, "1KVA ({kva}) must be more accurate than 1KVL ({kvl})");
    assert!(kvl < kr3, "1KVL ({kvl}) must be more accurate than 1KR3 ({kr3})");
}

#[test]
fn hardware_features_track_operator_cost() {
    let fw = small_framework();
    let cheap_idx = fw.catalog().index_of("mul8s_bam_v8_h3").expect("in catalog");
    let mut config = Configuration::golden(3);
    let x_exact = fw.encode_hw(&config).expect("library characterizes");
    config.mul_indices = vec![cheap_idx; 9];
    let x_cheap = fw.encode_hw(&config).expect("library characterizes");
    assert_eq!(x_exact.len(), x_cheap.len());
    // Feature 4 is the first tap's LUT count.
    assert!(x_cheap[4] < x_exact[4]);
}

#[test]
fn facade_reexports_are_usable() {
    // The `clapped` facade must expose all subsystem crates.
    let _ = clapped::la::Mat::identity(2);
    let _ = clapped::netlist::Netlist::new("t");
    let _ = clapped::imgproc::Image::filled(2, 2, 0);
    let _ = clapped::dse::Configuration::golden(3);
    let m = clapped::axops::Catalog::standard();
    assert!(m.get("mul8s_exact").is_some());
    assert_eq!(Mul8s::name(m.get("mul8s_exact").unwrap().as_ref()), "mul8s_exact");
}
