//! # CLAppED — Cross-Layer Approximation for FPGA-based Embedded Systems
//!
//! A Rust reproduction of the CLAppED design framework (DAC 2021). The
//! framework enables design-space exploration across cross-layer
//! approximation degrees of freedom — input scaling, convolution stride and
//! mode, downsampling, and per-operation approximate multipliers — together
//! with a polynomial-regression based characterization of approximate
//! arithmetic operators and ML-based estimation of application quality and
//! accelerator performance.
//!
//! This facade crate re-exports the workspace crates under stable module
//! names:
//!
//! - [`la`] — dense linear algebra (QR, Cholesky, standardization).
//! - [`netlist`] — gate-level netlists, LUT mapping, timing and power (the
//!   "synthesis" substrate standing in for Vivado).
//! - [`axops`] — the approximate operator library (behavioural + netlist).
//! - [`errmodel`] — error metrics, distribution/curve fitting, polynomial
//!   regression models.
//! - [`mlp`] — from-scratch multi-layer perceptron and quality metrics.
//! - [`imgproc`] — images, synthetic data, DoF-aware convolution engine.
//! - [`accel`] — accelerator architectures and performance estimation.
//! - [`dse`] — Pareto tools, hypervolume, MBO and baseline searches.
//! - [`runtime`] — SLA-keeping stream supervisor: degradation ladder,
//!   online quality monitor, fault watchdog, checkpointable controller.
//! - [`exec`] — deterministic parallel evaluation engine with
//!   content-addressed result caching.
//! - [`obs`] — structured tracing and metrics (spans, counters, JSONL
//!   trace sink; enabled with `--trace` in the examples).
//! - [`lint`] — static analysis: workspace source/layering lints and
//!   netlist structural lints (the `clapped_lint` CI gate).
//! - [`core`] — the CLAppED framework façade wiring all stages together.
//! - [`serve`] — DSE-as-a-service: a multi-tenant daemon with a fair job
//!   queue, sharded workers, and crash-safe checkpointed sessions.
//!
//! # Quick start
//!
//! ```
//! use clapped::axops::Catalog;
//!
//! let catalog = Catalog::standard();
//! assert!(catalog.len() >= 8);
//! ```

pub use clapped_accel as accel;
pub use clapped_axops as axops;
pub use clapped_core as core;
pub use clapped_dse as dse;
pub use clapped_errmodel as errmodel;
pub use clapped_exec as exec;
pub use clapped_imgproc as imgproc;
pub use clapped_la as la;
pub use clapped_lint as lint;
pub use clapped_mlp as mlp;
pub use clapped_netlist as netlist;
pub use clapped_obs as obs;
pub use clapped_runtime as runtime;
pub use clapped_serve as serve;
