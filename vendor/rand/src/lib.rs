//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors the small slice of `rand` it actually uses:
//! [`RngCore`], the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`, `gen_ratio`), [`SeedableRng`] with the `seed_from_u64`
//! convenience constructor, and [`seq::SliceRandom`] (`choose`,
//! `shuffle`).
//!
//! Value streams are deterministic but are not bit-compatible with the
//! upstream crate; nothing in this workspace depends on upstream
//! streams.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A seedable generator with a deterministic `u64` convenience seeder.
pub trait SeedableRng: Sized {
    /// The fixed-size seed.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with SplitMix64 and constructs
    /// the generator from it.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that `Rng::gen` can produce uniformly over their whole domain.
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Range types `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` without modulo bias worth caring
/// about here (widening multiply).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi.wrapping_sub(lo) as u64).wrapping_add(1);
                if span == 0 {
                    // Full-domain range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as StandardSample>::standard_sample(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as StandardSample>::standard_sample(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// User-facing generator methods, blanket-implemented for every
/// [`RngCore`] (including trait objects).
pub trait Rng: RngCore {
    /// Draws a uniformly random value over `T`'s whole domain.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} not in [0, 1]");
        // Compare against 53 uniform bits; avoids generic dispatch so it
        // stays callable on trait objects.
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }

    /// True with probability `numerator / denominator`.
    ///
    /// # Panics
    ///
    /// Panics if `denominator` is zero or `numerator > denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "gen_ratio denominator must be non-zero");
        assert!(
            numerator <= denominator,
            "gen_ratio numerator {numerator} > denominator {denominator}"
        );
        (((u64::from(self.next_u32()) * u64::from(denominator)) >> 32) as u32) < numerator
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers (`rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extension trait: random element choice and shuffling.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniformly random element, or `None` for an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = super::uniform_u64(rng, self.len() as u64) as usize;
                Some(&self[i])
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_u64(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }

    // Silence unused-import lint paths for downstream `use` statements.
    #[allow(unused_imports)]
    use super::SeedableRng as _;
    #[allow(dead_code)]
    fn _assert_obj_safe(_: &mut dyn RngCore) {}
}

/// `rand::rngs` subset: a small fast generator for miscellaneous use.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64-based small generator (stand-in for `SmallRng`).
    #[derive(Debug, Clone)]
    pub struct SmallRng(u64);

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            SmallRng(u64::from_le_bytes(seed))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let n: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&n));
            let m: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&m));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn dyn_rngcore_supports_ratio() {
        let mut rng = SmallRng::seed_from_u64(4);
        let pick = |r: &mut dyn RngCore| r.gen_ratio(1, 2);
        let mut trues = 0;
        for _ in 0..1000 {
            if pick(&mut rng) {
                trues += 1;
            }
        }
        assert!((300..700).contains(&trues), "{trues}");
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
