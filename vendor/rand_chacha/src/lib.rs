//! Offline ChaCha-based generators for the vendored `rand` subset.
//!
//! Implements a genuine ChaCha core (the full quarter-round/double-round
//! schedule) with 8, 12 and 20-round variants. Streams are deterministic
//! and self-consistent but not bit-compatible with the upstream
//! `rand_chacha` crate; nothing in this workspace depends on upstream
//! streams.
//!
//! Beyond the upstream API subset (`RngCore`, `SeedableRng`), the
//! generators expose [`ChaChaRng::get_seed`], [`ChaChaRng::get_word_pos`]
//! and [`ChaChaRng::set_word_pos`], which the DSE checkpoint/resume
//! machinery uses to serialize RNG state exactly.

use rand::{RngCore, SeedableRng};

/// Words per ChaCha block.
const BLOCK_WORDS: usize = 16;

/// A ChaCha generator with `R` double-rounds (so `ChaChaRng<4>` is
/// ChaCha8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaChaRng<const R: usize> {
    seed: [u8; 32],
    /// Block counter of the *next* block to generate.
    counter: u64,
    buf: [u32; BLOCK_WORDS],
    /// Next unread word index in `buf`; `BLOCK_WORDS` means empty.
    index: usize,
}

/// ChaCha with 8 rounds (4 double-rounds): the workspace's workhorse RNG.
pub type ChaCha8Rng = ChaChaRng<4>;
/// ChaCha with 12 rounds.
pub type ChaCha12Rng = ChaChaRng<6>;
/// ChaCha with 20 rounds.
pub type ChaCha20Rng = ChaChaRng<10>;

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl<const R: usize> ChaChaRng<R> {
    fn block(&self, counter: u64) -> [u32; BLOCK_WORDS] {
        let mut state = [0u32; BLOCK_WORDS];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes(
                self.seed[4 * i..4 * i + 4].try_into().expect("4-byte chunk"),
            );
        }
        state[12] = counter as u32;
        state[13] = (counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let mut working = state;
        for _ in 0..R {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (w, s) in working.iter_mut().zip(state) {
            *w = w.wrapping_add(s);
        }
        working
    }

    fn refill(&mut self) {
        self.buf = self.block(self.counter);
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    /// The 32-byte seed this generator was constructed from.
    pub fn get_seed(&self) -> [u8; 32] {
        self.seed
    }

    /// Absolute position in the keystream, counted in 32-bit words.
    pub fn get_word_pos(&self) -> u128 {
        let blocks_done = if self.index == BLOCK_WORDS {
            u128::from(self.counter)
        } else {
            u128::from(self.counter) - 1
        };
        blocks_done * BLOCK_WORDS as u128 + (self.index % BLOCK_WORDS) as u128
    }

    /// Seeks to an absolute keystream position (in 32-bit words).
    pub fn set_word_pos(&mut self, word_pos: u128) {
        let block = (word_pos / BLOCK_WORDS as u128) as u64;
        let word = (word_pos % BLOCK_WORDS as u128) as usize;
        self.counter = block;
        self.refill();
        self.index = word;
    }
}

impl<const R: usize> SeedableRng for ChaChaRng<R> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        ChaChaRng {
            seed,
            counter: 0,
            buf: [0; BLOCK_WORDS],
            index: BLOCK_WORDS,
        }
    }
}

impl<const R: usize> RngCore for ChaChaRng<R> {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BLOCK_WORDS {
            self.refill();
        }
        let w = self.buf[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn word_pos_roundtrip_resumes_stream() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..37 {
            rng.next_u32();
        }
        let pos = rng.get_word_pos();
        let tail: Vec<u32> = (0..50).map(|_| rng.next_u32()).collect();

        let mut resumed = ChaCha8Rng::from_seed(rng.get_seed());
        resumed.set_word_pos(pos);
        let tail2: Vec<u32> = (0..50).map(|_| resumed.next_u32()).collect();
        assert_eq!(tail, tail2);
    }

    #[test]
    fn word_pos_counts_words() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(rng.get_word_pos(), 0);
        rng.next_u32();
        assert_eq!(rng.get_word_pos(), 1);
        rng.next_u64();
        assert_eq!(rng.get_word_pos(), 3);
        for _ in 0..13 {
            rng.next_u32();
        }
        assert_eq!(rng.get_word_pos(), 16);
    }

    #[test]
    fn blocks_differ() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }
}
