//! Offline mini benchmark harness.
//!
//! The build environment has no crates.io access, so this crate
//! reimplements the narrow slice of the `criterion` API the workspace's
//! benches use: [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros (both the plain and the
//! `name/config/targets` forms).
//!
//! Measurement is deliberately simple: each benchmark runs a short
//! warm-up, then `sample_size` timed samples, and reports the median
//! per-iteration time on stdout. There are no HTML reports, outlier
//! analysis, or baselines — the goal is that `cargo bench` compiles,
//! runs, and prints usable numbers without the real dependency.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting
/// benchmarked work.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`, keeping each result alive via
    /// [`black_box`].
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(id, self.sample_size, f);
        self
    }

    /// Opens a named group; member benchmarks are reported as
    /// `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size,
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Ends the group. (Reports are flushed eagerly, so this only
    /// exists for API compatibility.)
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    // Warm-up probe: find an iteration count that takes a measurable
    // slice of time (~5ms per sample, capped so cheap routines don't
    // spin forever).
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
            break;
        }
        iters = iters.saturating_mul(2);
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let (lo, hi) = (per_iter[0], per_iter[per_iter.len() - 1]);
    println!(
        "{id:<40} time: [{} {} {}]",
        format_time(lo),
        format_time(median),
        format_time(hi)
    );
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// Declares a benchmark group function. Supports both the plain form
/// `criterion_group!(benches, f, g)` and the configured form
/// `criterion_group! { name = benches; config = ...; targets = f, g }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)*) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)*) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)*) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut ran = 0u64;
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn group_runs_and_finishes() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        let mut hits = 0u64;
        group.bench_function("member", |b| b.iter(|| hits += 1));
        group.finish();
        assert!(hits > 0);
    }

    #[test]
    fn format_time_picks_unit() {
        assert!(format_time(2e-9).ends_with("ns"));
        assert!(format_time(2e-6).ends_with("µs"));
        assert!(format_time(2e-3).ends_with("ms"));
        assert!(format_time(2.0).ends_with(" s"));
    }
}
