//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access. The workspace's
//! manifests depend on `serde` but all actual (de)serialization in the
//! tree goes through the vendored `serde_json`'s `Value` type, so this
//! crate only needs to exist and expose marker traits. The `derive`
//! feature is declared (empty) to satisfy the workspace manifest; no
//! code in the tree derives `Serialize`/`Deserialize`.

/// Marker for types that can be serialized.
///
/// The vendored `serde_json` works on its own `Value` tree rather than
/// through this trait, so no methods are required.
pub trait Serialize {}

/// Marker for types that can be deserialized.
pub trait Deserialize<'de>: Sized {}

macro_rules! impl_markers {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}
impl_markers!(
    bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, String
);

impl Serialize for str {}
impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize + ?Sized> Serialize for &T {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
