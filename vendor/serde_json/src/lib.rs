//! Offline mini `serde_json`.
//!
//! The build environment has no crates.io access, so this crate
//! reimplements the slice of the `serde_json` API the workspace uses:
//! the [`Value`] tree, the [`json!`] macro (including nested arrays and
//! objects), [`to_string`] / [`to_string_pretty`], a strict [`from_str`]
//! parser, and `Index`/`IndexMut` by string key.
//!
//! Numbers are stored losslessly as `u64` / `i64` / `f64` like upstream,
//! so integer round-trips (e.g. checkpointed iteration counters and RNG
//! stream positions) are exact. Objects use a `BTreeMap`, so
//! serialization order is deterministic — which the DSE checkpoint tests
//! rely on when comparing serialized state byte-for-byte.

use std::collections::BTreeMap;
use std::fmt;

/// The map type backing [`Value::Object`]. Sorted, so output is
/// deterministic.
pub type Map = BTreeMap<String, Value>;

/// A JSON number: unsigned, signed, or floating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Number(N);

#[derive(Debug, Clone, Copy, PartialEq)]
enum N {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl Number {
    /// Creates a number from a finite float; returns `None` for
    /// NaN/infinity, which JSON cannot represent.
    pub fn from_f64(f: f64) -> Option<Number> {
        f.is_finite().then_some(Number(N::Float(f)))
    }

    /// The value as `f64` (lossy for huge integers).
    pub fn as_f64(&self) -> Option<f64> {
        Some(match self.0 {
            N::PosInt(u) => u as f64,
            N::NegInt(i) => i as f64,
            N::Float(f) => f,
        })
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            N::PosInt(u) => Some(u),
            N::NegInt(i) => u64::try_from(i).ok(),
            N::Float(_) => None,
        }
    }

    /// The value as `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            N::PosInt(u) => i64::try_from(u).ok(),
            N::NegInt(i) => Some(i),
            N::Float(_) => None,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            N::PosInt(u) => write!(f, "{u}"),
            N::NegInt(i) => write!(f, "{i}"),
            N::Float(v) => {
                if !v.is_finite() {
                    // JSON has no non-finite literals; upstream refuses to
                    // construct such numbers at all.
                    return write!(f, "null");
                }
                // `{}` on f64 is shortest round-trip; force a float marker
                // so the value parses back as a float, not an integer.
                let s = format!("{v}");
                if s.contains('.') || s.contains('e') || s.contains('E') {
                    write!(f, "{s}")
                } else {
                    write!(f, "{s}.0")
                }
            }
        }
    }
}

/// A parsed or constructed JSON document node.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered list.
    Array(Vec<Value>),
    /// A key-sorted map.
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// `Some(f64)` if this is any kind of number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// `Some(u64)` if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// `Some(i64)` if this is an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// `Some(&str)` if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// `Some(bool)` if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// `Some(&Vec<Value>)` if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// `Some(&mut Vec<Value>)` if this is an array.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// `Some(&Map)` if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// `Some(&mut Map)` if this is an object.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// True only for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member lookup that never panics.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_value(f, self, None, 0)
    }
}

// ---------------------------------------------------------------------------
// Conversions
// ---------------------------------------------------------------------------

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number(N::PosInt(v as u64))) }
        }
    )*};
}
from_unsigned!(u8, u16, u32, u64, usize);

macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                let v = v as i64;
                if v >= 0 {
                    Value::Number(Number(N::PosInt(v as u64)))
                } else {
                    Value::Number(Number(N::NegInt(v)))
                }
            }
        }
    )*};
}
from_signed!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number(N::Float(v)))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number(N::Float(f64::from(v))))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl From<Number> for Value {
    fn from(v: Number) -> Value {
        Value::Number(v)
    }
}

impl From<Map> for Value {
    fn from(v: Map) -> Value {
        Value::Object(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value>> FromIterator<T> for Value {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Value {
        Value::Array(iter.into_iter().map(Into::into).collect())
    }
}

/// By-reference conversion used by the [`json!`] macro, mirroring how
/// upstream serializes interpolated expressions through `&T`. The
/// blanket `&T` impl lets the macro accept values at any reference
/// depth without moving them.
pub trait ToJson {
    /// Converts to a [`Value`] without consuming `self`.
    fn to_json(&self) -> Value;
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

macro_rules! to_json_via_from {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value { Value::from(*self) }
        }
    )*};
}
to_json_via_from!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool);

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

/// Entry point the [`json!`] macro expands to for interpolated
/// expressions.
#[doc(hidden)]
pub fn __to_value<T: ToJson + ?Sized>(v: &T) -> Value {
    v.to_json()
}

// ---------------------------------------------------------------------------
// Indexing
// ---------------------------------------------------------------------------

impl std::ops::Index<&str> for Value {
    type Output = Value;
    /// Missing keys and non-objects index to `Null` (matching upstream).
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<String> for Value {
    type Output = Value;
    fn index(&self, key: String) -> &Value {
        &self[key.as_str()]
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

fn index_entry_mut<'a>(value: &'a mut Value, key: &str) -> &'a mut Value {
    if value.is_null() {
        *value = Value::Object(Map::new());
    }
    match value {
        Value::Object(m) => m.entry(key.to_string()).or_insert(Value::Null),
        other => panic!(
            "cannot index into {} with a string key",
            type_name(other)
        ),
    }
}

impl std::ops::IndexMut<&str> for Value {
    fn index_mut(&mut self, key: &str) -> &mut Value {
        index_entry_mut(self, key)
    }
}

impl std::ops::IndexMut<String> for Value {
    fn index_mut(&mut self, key: String) -> &mut Value {
        index_entry_mut(self, &key)
    }
}

fn type_name(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "a boolean",
        Value::Number(_) => "a number",
        Value::String(_) => "a string",
        Value::Array(_) => "an array",
        Value::Object(_) => "an object",
    }
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

/// Error raised by the parser (serialization is infallible here, but the
/// public functions keep upstream's `Result` signatures).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    /// Byte offset in the input at which the error was detected.
    pub offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.offset)
    }
}

impl std::error::Error for Error {}

/// Serializes compactly (no whitespace).
pub fn to_string(value: &Value) -> Result<String, Error> {
    Ok(render(value, None))
}

/// Serializes with two-space indentation.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    Ok(render(value, Some(2)))
}

fn render(value: &Value, indent: Option<usize>) -> String {
    struct W<'a>(&'a Value, Option<usize>);
    impl fmt::Display for W<'_> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write_value(f, self.0, self.1, 0)
        }
    }
    W(value, indent).to_string()
}

fn write_value(
    f: &mut fmt::Formatter<'_>,
    value: &Value,
    indent: Option<usize>,
    depth: usize,
) -> fmt::Result {
    match value {
        Value::Null => write!(f, "null"),
        Value::Bool(b) => write!(f, "{b}"),
        Value::Number(n) => write!(f, "{n}"),
        Value::String(s) => write_escaped(f, s),
        Value::Array(items) => {
            if items.is_empty() {
                return write!(f, "[]");
            }
            write!(f, "[")?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write_newline_indent(f, indent, depth + 1)?;
                write_value(f, item, indent, depth + 1)?;
            }
            write_newline_indent(f, indent, depth)?;
            write!(f, "]")
        }
        Value::Object(map) => {
            if map.is_empty() {
                return write!(f, "{{}}");
            }
            write!(f, "{{")?;
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write_newline_indent(f, indent, depth + 1)?;
                write_escaped(f, k)?;
                write!(f, ":")?;
                if indent.is_some() {
                    write!(f, " ")?;
                }
                write_value(f, v, indent, depth + 1)?;
            }
            write_newline_indent(f, indent, depth)?;
            write!(f, "}}")
        }
    }
}

fn write_newline_indent(
    f: &mut fmt::Formatter<'_>,
    indent: Option<usize>,
    depth: usize,
) -> fmt::Result {
    if let Some(step) = indent {
        writeln!(f)?;
        for _ in 0..step * depth {
            write!(f, " ")?;
        }
    }
    Ok(())
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            '\u{08}' => write!(f, "\\b")?,
            '\u{0c}' => write!(f, "\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error { msg: msg.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes at once.
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\' && b >= 0x20) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos.checked_add(4).filter(|&e| e <= self.bytes.len());
        let end = end.ok_or_else(|| self.err("truncated \\u escape"))?;
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number(N::PosInt(u))));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number(N::NegInt(i))));
            }
        }
        let f: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        Ok(Value::Number(Number(N::Float(f))))
    }
}

// ---------------------------------------------------------------------------
// json! macro (upstream-style tt-muncher)
// ---------------------------------------------------------------------------

/// Builds a [`Value`] from JSON-like syntax; supports nested arrays,
/// nested objects, and arbitrary interpolated expressions.
#[macro_export]
macro_rules! json {
    ($($json:tt)+) => {
        $crate::json_internal!($($json)+)
    };
}

/// Implementation detail of [`json!`].
#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    //------------------------------------------------------------------
    // @array: build a vec of Values, munching one element at a time.
    // State: [built elements] remaining tokens
    //------------------------------------------------------------------
    (@array [$($elems:expr,)*]) => {
        vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        vec![$($elems),*]
    };
    // Next element is a literal/compound form.
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($arr:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($arr)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($obj:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($obj)*})] $($rest)*)
    };
    // Next element is an expression followed by a comma.
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    // Last element: an expression with no trailing comma.
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    // Comma after a compound element.
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    //------------------------------------------------------------------
    // @object: insert key/value pairs into a map binding.
    // State: map ident, (current key tokens), (remaining), (copy of
    // remaining, for error recovery — mirrors upstream's shape)
    //------------------------------------------------------------------
    // Done.
    (@object $object:ident () () ()) => {};
    // Insert entry followed by more entries.
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(($($key)+).into(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    // Insert the final entry.
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(($($key)+).into(), $value);
    };
    // Current value is a literal/compound form.
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($arr:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($arr)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($obj:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($obj)*})) $($rest)*);
    };
    // Current value is an expression followed by a comma.
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    // Current value is the final expression.
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    // Munch one more token into the current key.
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    //------------------------------------------------------------------
    // Entry points.
    //------------------------------------------------------------------
    (null) => {
        $crate::Value::Null
    };
    (true) => {
        $crate::Value::Bool(true)
    };
    (false) => {
        $crate::Value::Bool(false)
    };
    ([]) => {
        $crate::Value::Array(vec![])
    };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => {
        $crate::Value::Object($crate::Map::new())
    };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object = $crate::Map::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => {
        $crate::__to_value(&$other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_scalars_and_nesting() {
        let v = json!({
            "name": "MBO",
            "hv": 0.25,
            "evals": 128usize,
            "flag": true,
            "nothing": null,
            "tags": ["a", format!("b{}", 2)],
            "rows": [
                {"x": 1, "y": -2},
                {"x": 3.5, "y": 4},
            ],
        });
        assert_eq!(v["name"].as_str(), Some("MBO"));
        assert_eq!(v["hv"].as_f64(), Some(0.25));
        assert_eq!(v["evals"].as_u64(), Some(128));
        assert_eq!(v["flag"].as_bool(), Some(true));
        assert!(v["nothing"].is_null());
        assert_eq!(v["tags"][1].as_str(), Some("b2"));
        assert_eq!(v["rows"][0]["y"].as_i64(), Some(-2));
        assert_eq!(v["rows"][1]["x"].as_f64(), Some(3.5));
    }

    #[test]
    fn json_macro_interpolated_collections() {
        let rows: Vec<Value> = (0..3).map(|i| json!({ "i": i })).collect();
        let v = json!({ "rows": rows, "n": 3 });
        assert_eq!(v["rows"].as_array().map(Vec::len), Some(3));
        assert_eq!(v["rows"][2]["i"].as_u64(), Some(2));
    }

    #[test]
    fn index_mut_inserts_and_overwrites() {
        let mut v = json!({"metric": "mse"});
        v[format!("fid_{}", "gp")] = json!(0.5);
        v["metric"] = json!("mae");
        assert_eq!(v["fid_gp"].as_f64(), Some(0.5));
        assert_eq!(v["metric"].as_str(), Some("mae"));
    }

    #[test]
    fn missing_key_indexes_to_null() {
        let v = json!({"a": 1});
        assert!(v["b"].is_null());
        assert!(v["a"]["deep"].is_null());
    }

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = json!({
            "s": "quote \" backslash \\ newline \n",
            "big": 9007199254740993u64,
            "neg": -42,
            "pi": 3.141592653589793,
            "arr": [1, 2.5, null, false],
        });
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back = from_str(&text).expect("parses");
            assert_eq!(back, v, "roundtrip failed for: {text}");
        }
        // u64 precision survives (would be lost through f64).
        let text = to_string(&v).unwrap();
        let back = from_str(&text).unwrap();
        assert_eq!(back["big"].as_u64(), Some(9007199254740993));
    }

    #[test]
    fn float_marker_forced() {
        let text = to_string(&json!({ "x": 5.0 })).unwrap();
        assert!(text.contains("5.0"), "got: {text}");
        let back = from_str(&text).unwrap();
        assert_eq!(back["x"].as_f64(), Some(5.0));
        assert_eq!(back["x"].as_u64(), None);
    }

    #[test]
    fn parser_handles_escapes_and_unicode() {
        let v = from_str(r#"{"s": "a\tbé😀"}"#).unwrap();
        assert_eq!(v["s"].as_str(), Some("a\tbé😀"));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("nul").is_err());
        assert!(from_str(r#"{"a": 1} trailing"#).is_err());
        assert!(from_str("\"unterminated").is_err());
    }

    #[test]
    fn object_keys_sorted_deterministically() {
        let v = json!({"z": 1, "a": 2, "m": 3});
        assert_eq!(to_string(&v).unwrap(), r#"{"a":2,"m":3,"z":1}"#);
    }
}
