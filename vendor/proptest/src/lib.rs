//! Offline mini property-testing harness.
//!
//! The build environment has no crates.io access, so this crate
//! reimplements the narrow slice of the `proptest` API the workspace
//! uses: the [`proptest!`] macro (with `#![proptest_config(..)]`,
//! `name in strategy` and `name: Type` parameters), numeric range
//! strategies, [`arbitrary::any`], [`collection::vec`], and the
//! `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from upstream: cases are drawn from a deterministic
//! per-test RNG (seeded from the test's module path and name), and
//! failing inputs are reported but **not shrunk**.

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi.wrapping_sub(lo) as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    lo + (hi - lo) * rng.unit_f64() as $t
                }
            }
        )*};
    }
    impl_float_range_strategy!(f32, f64);

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized + Debug {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite, moderately sized values; upstream biases toward
            // special values but the workspace's properties only need
            // coverage of ordinary magnitudes.
            (rng.unit_f64() - 0.5) * 2e6
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            ((rng.unit_f64() - 0.5) * 2e6) as f32
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Default)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Minimum length (inclusive).
        pub min: usize,
        /// Maximum length (inclusive).
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    /// Strategy for `Vec<S::Value>` with lengths drawn from a
    /// [`SizeRange`].
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod test_runner {
    /// Per-test deterministic RNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeds the generator from a test identifier string, so every
        /// test gets a stable, distinct stream.
        pub fn deterministic(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x1_0000_0000_01b3);
            }
            TestRng(h)
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, span)`.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Runner configuration; only `cases` is meaningful here.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases generated per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Sentinel error message marking a case rejected by [`prop_assume!`];
/// the runner skips such cases instead of failing.
#[doc(hidden)]
pub const ASSUME_REJECTED: &str = "__proptest_assume_rejected__";

/// Skips the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::string::String::from(
                $crate::ASSUME_REJECTED,
            ));
        }
    };
}

/// Fails the current property case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Fails the current property case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), a, b
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

/// Fails the current property case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a), stringify!($b), a
            ));
        }
    }};
}

/// Generates one binding per property parameter, records a debug
/// rendering of each generated value, then runs the body.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bindings {
    // Terminal: no parameters left (possibly a trailing comma consumed).
    ($rng:ident, $desc:ident, $body:block;) => {{
        { $body }
        #[allow(unreachable_code)]
        ::std::result::Result::Ok(())
    }};
    // `name in strategy` parameter.
    ($rng:ident, $desc:ident, $body:block; $name:ident in $strat:expr $(, $($rest:tt)*)?) => {{
        let $name = $crate::strategy::Strategy::generate(&($strat), &mut *$rng);
        $desc.push_str(&format!("{} = {:?}; ", stringify!($name), $name));
        $crate::__proptest_bindings!($rng, $desc, $body; $($($rest)*)?)
    }};
    // `name: Type` parameter (sugar for `any::<Type>()`).
    ($rng:ident, $desc:ident, $body:block; $name:ident : $ty:ty $(, $($rest:tt)*)?) => {{
        let $name: $ty = $crate::strategy::Strategy::generate(
            &$crate::arbitrary::any::<$ty>(), &mut *$rng,
        );
        $desc.push_str(&format!("{} = {:?}; ", stringify!($name), $name));
        $crate::__proptest_bindings!($rng, $desc, $body; $($($rest)*)?)
    }};
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr; $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            #[allow(unused_mut)]
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                #[allow(unused_mut)]
                let mut desc = ::std::string::String::new();
                let outcome: ::std::result::Result<(), ::std::string::String> = {
                    let rng = &mut rng;
                    let desc = &mut desc;
                    (move || $crate::__proptest_bindings!(rng, desc, $body; $($params)*))()
                };
                if let ::std::result::Result::Err(msg) = outcome {
                    if msg == $crate::ASSUME_REJECTED {
                        continue; // prop_assume! rejected this case
                    }
                    panic!(
                        "proptest case {}/{} failed with inputs [{}]: {}",
                        case + 1, config.cases, desc.trim_end_matches("; "), msg
                    );
                }
            }
        }
        $crate::__proptest_fns!(cfg = $cfg; $($rest)*);
    };
}

/// The property-test entry macro: see the crate docs for the supported
/// subset of the upstream grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(cfg = $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Range strategies respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in -1.5f64..2.5, z in 0u8..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.5..2.5).contains(&y));
            prop_assert!(z <= 4);
        }

        /// Bare-typed parameters draw whole-domain values.
        #[test]
        fn typed_params_work(seed: u64, small: i8) {
            let _ = (seed, small);
            prop_assert_eq!(i16::from(small), i16::from(small));
        }

        /// Vec strategies hit the requested length window.
        #[test]
        fn vec_lengths(v in collection::vec(0.0f64..1.0, 2..6)) {
            prop_assert!((2..6).contains(&v.len()), "len {}", v.len());
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        /// Nested vec composition works.
        #[test]
        fn nested_vecs(rows in collection::vec(collection::vec(0u8..=255, 3), 1..4)) {
            prop_assert!(rows.iter().all(|r| r.len() == 3));
        }
    }

    #[test]
    fn failing_property_panics_with_inputs() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(8))]
                fn always_fails(x in 0usize..4) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        });
        let msg = *result.expect_err("must fail").downcast::<String>().expect("string panic");
        assert!(msg.contains("failed with inputs"), "{msg}");
    }
}
